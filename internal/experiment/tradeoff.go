package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mms"
	"repro/internal/pool"
	"repro/internal/response"
	"repro/internal/rng"
	"repro/internal/virus"
)

// Section 3.3 states the monitoring/blacklisting threshold "should ideally
// be as high as possible to avoid false positive activation of the
// response, but ... low enough to effectively restrict the dissemination of
// infected messages". The paper never measures the false-positive side;
// this study does, by adding background legitimate traffic and sweeping the
// monitoring threshold against Virus 3.

// TradeoffPoint is one threshold level of the monitoring trade-off study.
type TradeoffPoint struct {
	// Threshold is the message count per window that flags a phone.
	Threshold int
	// FinalInfected is the mean final infection count (containment; lower
	// is better).
	FinalInfected float64
	// FalsePositives is the mean number of never-infected phones flagged
	// per replication (lower is better).
	FalsePositives float64
	// TruePositives is the mean number of infected phones flagged.
	TruePositives float64
}

// TradeoffConfig parameterizes the study.
type TradeoffConfig struct {
	// Scale shrinks the population for tests.
	Scale Scale
	// Thresholds are the monitor thresholds to sweep (per Window).
	Thresholds []int
	// Window is the monitoring observation window.
	Window time.Duration
	// ForcedWait is the penalty applied to flagged phones.
	ForcedWait time.Duration
	// LegitMeanInterval is the mean time between a user's legitimate
	// messages.
	LegitMeanInterval time.Duration
}

// DefaultTradeoffConfig sweeps thresholds 1..8 per 30 minutes against
// moderately chatty users (mean 25 minutes between messages).
func DefaultTradeoffConfig(s Scale) TradeoffConfig {
	return TradeoffConfig{
		Scale:             s,
		Thresholds:        []int{1, 2, 4, 8},
		Window:            30 * time.Minute,
		ForcedWait:        15 * time.Minute,
		LegitMeanInterval: 25 * time.Minute,
	}
}

// tradeoffCounts accumulates flag classifications across the replications
// of one threshold level. PostRun hooks run concurrently under the sweep
// scheduler, so the totals are mutex-guarded; the counts are integers, so
// the accumulated sums are exact regardless of completion order.
type tradeoffCounts struct {
	mu                sync.Mutex
	falsePos, truePos int
}

// collect is the PostRun hook: it pairs each replication's monitor with
// its network at the horizon and classifies every flagged phone.
func (c *tradeoffCounts) collect(net *mms.Network) {
	falsePos, truePos := 0, 0
	for _, r := range net.Responses() {
		m, ok := r.(*response.Monitor)
		if !ok {
			continue
		}
		for _, p := range m.FlaggedPhones() {
			if net.State(p) == mms.StateInfected {
				truePos++
			} else {
				falsePos++
			}
		}
	}
	c.mu.Lock()
	c.falsePos += falsePos
	c.truePos += truePos
	c.mu.Unlock()
}

// RunMonitorTradeoff sweeps the monitoring threshold and measures both the
// containment of Virus 3 and the false-positive flags caused by legitimate
// traffic. All thresholds' replications are flattened onto one worker pool
// (opts.Parallelism wide); each replication gets a fresh monitor through
// the ordinary factory path, and a PostRun hook pairs it with its network
// at the horizon via mms.Network.Responses. The PostRun hook makes these
// configs uncacheable by design — every replication measures its own
// mechanism state, so memoizing would be wrong.
func RunMonitorTradeoff(tc TradeoffConfig, opts core.Options) ([]TradeoffPoint, error) {
	if len(tc.Thresholds) == 0 {
		return nil, fmt.Errorf("experiment: tradeoff needs thresholds")
	}
	if tc.Window <= 0 || tc.ForcedWait <= 0 || tc.LegitMeanInterval <= 0 {
		return nil, fmt.Errorf("experiment: tradeoff timings must be positive")
	}
	opts = opts.WithDefaults()

	p := pool.New(opts.Parallelism)
	defer p.Close()
	jobs := make([]*seriesJob, len(tc.Thresholds))
	counts := make([]*tradeoffCounts, len(tc.Thresholds))
	for ti, threshold := range tc.Thresholds {
		counts[ti] = &tradeoffCounts{}
		cfg := tc.Scale.paperConfig(virus.Virus3())
		cfg.Network.LegitSendInterval = rng.Exponential{MeanD: tc.LegitMeanInterval}
		cfg.Responses = []mms.ResponseFactory{
			response.NewMonitorFull(tc.Window, threshold, tc.ForcedWait),
		}
		cfg.PostRun = counts[ti].collect
		jobs[ti] = submitSeries(p, context.Background(), nil, cfg, opts)
	}

	points := make([]TradeoffPoint, 0, len(tc.Thresholds))
	for ti, threshold := range tc.Thresholds {
		rs, err := jobs[ti].wait()
		if err != nil {
			return nil, fmt.Errorf("experiment: tradeoff threshold %d: %w", threshold, err)
		}
		n := float64(len(rs.Results))
		points = append(points, TradeoffPoint{
			Threshold:      threshold,
			FinalInfected:  rs.FinalMean(),
			FalsePositives: float64(counts[ti].falsePos) / n,
			TruePositives:  float64(counts[ti].truePos) / n,
		})
	}
	return points, nil
}
