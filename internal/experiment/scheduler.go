package experiment

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pool"
)

// This file is the sweep scheduler: it flattens every (study, series,
// replication) unit of the full study matrix into one bounded worker pool,
// so a slow series no longer serializes behind a fast one and the machine
// stays saturated from the first replication to the last. Two properties
// are load-bearing:
//
//   - Determinism. Workers race only over which unit runs when; each unit
//     is a pure function of (config, seed), results land in
//     replication-indexed slots, and every RunSet is assembled by
//     core.AssembleRunSet in seed order. Output bytes are therefore
//     identical for any worker count, with or without the cache.
//   - Crash isolation. Units run through core.RunReplication, so a panic
//     becomes a *core.ReplicationError in its slot and series keep
//     core.RunContext's salvage-quorum semantics exactly.

// SweepOptions tunes the cross-study scheduler.
type SweepOptions struct {
	// Jobs is the worker-pool width shared by every study in the sweep;
	// <= 0 means runtime.GOMAXPROCS(0). There is no per-series limit and
	// no nested semaphore: Jobs is the single concurrency bound.
	Jobs int
	// Cache, when non-nil, memoizes replication results by config
	// fingerprint and seed, so scenarios shared across studies (every
	// figure's Baseline) are simulated once per seed.
	Cache *ReplicationCache
}

// SweepResult is the outcome of a scheduled multi-study run.
type SweepResult struct {
	// Figures holds one result per requested figure, in request order. A
	// figure whose series partly failed is still present with its
	// surviving series (see FigureErrs).
	Figures []*FigureResult
	// FigureErrs is parallel to Figures: nil for a clean figure, the
	// errors.Join of its per-series failures otherwise.
	FigureErrs []error
	// Cache snapshots the cache counters after the sweep (zeros when the
	// sweep ran uncached).
	Cache CacheStats
	// Elapsed is the wall-clock cost of the whole sweep.
	Elapsed time.Duration
}

// RunSweep executes every series of every figure on one shared worker pool
// and assembles results deterministically. The returned error is the
// errors.Join of all per-figure errors; the *SweepResult is always
// returned alongside it with every surviving series, mirroring
// core.RunSet's salvage contract.
func RunSweep(ctx context.Context, figs []Figure, opts core.Options, so SweepOptions) (*SweepResult, error) {
	start := timeNow()
	if ctx == nil {
		ctx = context.Background()
	}
	for _, fig := range figs {
		if len(fig.Series) == 0 {
			return nil, fmt.Errorf("experiment: figure %s has no series", fig.ID)
		}
	}

	p := pool.New(so.Jobs)
	defer p.Close()

	// Enqueue everything before waiting on anything: the pool sees the
	// whole matrix at once, so workers drain replications of study N+1
	// while study N's stragglers finish.
	jobs := make([][]*seriesJob, len(figs))
	for fi, fig := range figs {
		jobs[fi] = make([]*seriesJob, len(fig.Series))
		for si, s := range fig.Series {
			jobs[fi][si] = submitSeries(p, ctx, so.Cache, s.Config, opts)
		}
	}

	out := &SweepResult{
		Figures:    make([]*FigureResult, len(figs)),
		FigureErrs: make([]error, len(figs)),
	}
	var sweepErrs []error
	for fi, fig := range figs {
		fr := &FigureResult{Figure: fig, Series: make([]SeriesResult, 0, len(fig.Series))}
		var serErrs []error
		for si, s := range fig.Series {
			rs, err := jobs[fi][si].wait()
			if err != nil {
				serErrs = append(serErrs, fmt.Errorf("experiment: %s / %s: %w", fig.ID, s.Label, err))
				continue
			}
			fr.Series = append(fr.Series, SeriesResult{
				Label:     s.Label,
				Band:      rs.Band,
				FinalMean: rs.FinalMean(),
				RunSet:    rs,
			})
		}
		fr.Elapsed = timeNow().Sub(start)
		out.Figures[fi] = fr
		if len(serErrs) > 0 {
			err := errors.Join(serErrs...)
			out.FigureErrs[fi] = err
			sweepErrs = append(sweepErrs, err)
		}
	}
	out.Cache = so.Cache.Stats()
	out.Elapsed = timeNow().Sub(start)
	return out, errors.Join(sweepErrs...)
}

// seriesJob tracks one scenario's replications through the pool: slots are
// indexed by replication so assembly order never depends on completion
// order.
type seriesJob struct {
	cfg     core.Config
	opts    core.Options
	results []*core.Result
	errs    []*core.ReplicationError
	pending sync.WaitGroup
	// cfgErr short-circuits a config that fails validation before any
	// replication is enqueued, preserving RunContext's single-error shape.
	cfgErr error
}

// submitSeries validates cfg, fingerprints it once, and enqueues one task
// per replication on the shared worker pool.
func submitSeries(p *pool.Pool, ctx context.Context, cache *ReplicationCache, cfg core.Config, opts core.Options) *seriesJob {
	opts = opts.WithDefaults()
	j := &seriesJob{cfg: cfg, opts: opts}
	if err := cfg.Validate(); err != nil {
		j.cfgErr = err
		return j
	}
	if opts.MinReplications > opts.Replications {
		j.cfgErr = fmt.Errorf("core: salvage quorum %d exceeds %d replications",
			opts.MinReplications, opts.Replications)
		return j
	}
	var fp Fingerprint // zero value: uncacheable, skips hashing entirely
	if cache != nil {
		fp = ConfigFingerprint(cfg)
	}
	j.results = make([]*core.Result, opts.Replications)
	j.errs = make([]*core.ReplicationError, opts.Replications)
	j.pending.Add(opts.Replications)
	for i := 0; i < opts.Replications; i++ {
		i := i
		seed := core.ReplicationSeed(opts.BaseSeed, i)
		p.Submit(func() {
			defer j.pending.Done()
			j.results[i], j.errs[i] = cache.run(ctx, cfg, fp, i, seed)
		})
	}
	return j
}

// wait blocks until every replication of the series has run, then
// assembles the RunSet with core's salvage semantics.
func (j *seriesJob) wait() (*core.RunSet, error) {
	if j.cfgErr != nil {
		return nil, j.cfgErr
	}
	j.pending.Wait()
	return core.AssembleRunSet(j.cfg, j.opts, j.results, j.errs)
}
