package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/asciichart"
)

// WriteCSV emits the figure's aggregated curves as CSV: one row per grid
// time, one column pair (mean, ci95) per series.
func (fr *FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"hours"}
	for _, s := range fr.Series {
		header = append(header, s.Label+" mean", s.Label+" ci95")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write csv header: %w", err)
	}
	if len(fr.Series) == 0 {
		cw.Flush()
		return cw.Error()
	}
	grid := fr.Series[0].Band.Times
	row := make([]string, 0, 1+2*len(fr.Series))
	for i := range grid {
		row = row[:0]
		row = append(row, strconv.FormatFloat(grid[i].Hours(), 'f', 3, 64))
		for _, s := range fr.Series {
			if i < len(s.Band.Mean) {
				row = append(row,
					strconv.FormatFloat(s.Band.Mean[i], 'f', 3, 64),
					strconv.FormatFloat(s.Band.CI95[i], 'f', 3, 64))
			} else {
				row = append(row, "", "")
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderASCII draws the figure as a terminal chart shaped like the paper's
// plot.
func (fr *FigureResult) RenderASCII() (string, error) {
	series := make([]asciichart.Series, 0, len(fr.Series))
	for _, s := range fr.Series {
		xs := make([]float64, s.Band.Len())
		ys := make([]float64, s.Band.Len())
		for i := range xs {
			xs[i] = s.Band.Times[i].Hours()
			ys[i] = s.Band.Mean[i]
		}
		series = append(series, asciichart.Series{Name: s.Label, X: xs, Y: ys})
	}
	return asciichart.Render(asciichart.Config{
		Title:  fr.Figure.Title,
		XLabel: fr.Figure.XLabel,
		YLabel: fr.Figure.YLabel,
	}, series...)
}

// Summary renders a one-line-per-series text table with final means.
func (fr *FigureResult) Summary() string {
	out := fr.Figure.Title + "\n"
	for _, s := range fr.Series {
		out += fmt.Sprintf("  %-24s final mean = %7.1f infected\n", s.Label, s.FinalMean)
	}
	out += fmt.Sprintf("  (wall clock %v)\n", fr.Elapsed.Round(fr.Elapsed/100+1))
	return out
}
