package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mms"
	"repro/internal/pool"
	"repro/internal/response"
	"repro/internal/virus"
)

// Section 5.3 argues the experiments are "useful for locating the point of
// diminishing returns for each individual response mechanism, the point
// where implementing a faster or more accurate response mechanism does not
// much improve the success rate". This file implements that analysis: for
// one mechanism, sweep its strength knob, measure prevented infections at
// each level, and locate the knee where the marginal benefit of the next
// increment falls below a threshold.

// SweepPoint is one strength level of a mechanism sweep.
type SweepPoint struct {
	// Strength is the mechanism's knob value, oriented so larger is
	// stronger (and presumed costlier).
	Strength float64
	// Label names the level.
	Label string
	// Config is the full scenario at this level.
	Config core.Config
}

// Sweep is an ordered strength sweep of one mechanism against one virus.
type Sweep struct {
	// Name identifies the mechanism.
	Name string
	// Baseline is the unprotected scenario.
	Baseline core.Config
	// Points are the strength levels in increasing-strength order.
	Points []SweepPoint
}

// ReturnsPoint is one evaluated level.
type ReturnsPoint struct {
	Strength  float64
	Label     string
	Final     float64
	Prevented float64 // baseline final − this final
	// MarginalGain is the additional prevention relative to the previous
	// (weaker) level; the first level's marginal gain is its full
	// prevention.
	MarginalGain float64
}

// ReturnsResult is an evaluated sweep with its knee.
type ReturnsResult struct {
	Name     string
	Baseline float64
	Points   []ReturnsPoint
	// KneeIndex is the first level whose marginal gain drops below
	// KneeFraction of the baseline; -1 when returns never diminish within
	// the sweep.
	KneeIndex int
	// KneeFraction echoes the threshold used.
	KneeFraction float64
}

// Knee returns the knee point, if any.
func (r *ReturnsResult) Knee() (ReturnsPoint, bool) {
	if r.KneeIndex < 0 || r.KneeIndex >= len(r.Points) {
		return ReturnsPoint{}, false
	}
	return r.Points[r.KneeIndex], true
}

// EvaluateReturns runs the sweep and locates the point of diminishing
// returns: the first strength increment whose marginal prevention is below
// kneeFraction of the baseline infections. kneeFraction must lie in (0,1).
// Baseline and all levels are flattened onto one worker pool
// (opts.Parallelism wide) with a replication cache; the knee math reads
// results in level order, so the outcome is independent of scheduling.
func EvaluateReturns(sweep Sweep, kneeFraction float64, opts core.Options) (*ReturnsResult, error) {
	if len(sweep.Points) < 2 {
		return nil, errors.New("experiment: returns sweep needs at least 2 levels")
	}
	if kneeFraction <= 0 || kneeFraction >= 1 {
		return nil, fmt.Errorf("experiment: knee fraction %v outside (0,1)", kneeFraction)
	}
	opts = opts.WithDefaults()
	p := pool.New(opts.Parallelism)
	defer p.Close()
	cache := NewReplicationCache()
	baseJob := submitSeries(p, context.Background(), cache, sweep.Baseline, opts)
	pointJobs := make([]*seriesJob, len(sweep.Points))
	for i, pt := range sweep.Points {
		pointJobs[i] = submitSeries(p, context.Background(), cache, pt.Config, opts)
	}

	baseRun, err := baseJob.wait()
	if err != nil {
		return nil, fmt.Errorf("experiment: returns baseline: %w", err)
	}
	base := baseRun.FinalMean()
	res := &ReturnsResult{
		Name:         sweep.Name,
		Baseline:     base,
		KneeIndex:    -1,
		KneeFraction: kneeFraction,
	}
	prevPrevented := 0.0
	for i, p := range sweep.Points {
		rs, err := pointJobs[i].wait()
		if err != nil {
			return nil, fmt.Errorf("experiment: returns level %q: %w", p.Label, err)
		}
		final := rs.FinalMean()
		prevented := base - final
		pt := ReturnsPoint{
			Strength:     p.Strength,
			Label:        p.Label,
			Final:        final,
			Prevented:    prevented,
			MarginalGain: prevented - prevPrevented,
		}
		res.Points = append(res.Points, pt)
		if res.KneeIndex < 0 && i > 0 && pt.MarginalGain < kneeFraction*base {
			res.KneeIndex = i
		}
		prevPrevented = prevented
	}
	return res, nil
}

// ScanReturnsSweep sweeps the gateway scan's promptness (strength = 1/delay
// hours) against Virus 1.
func ScanReturnsSweep(s Scale) Sweep {
	baseline := s.paperConfig(virus.Virus1())
	sweep := Sweep{Name: "gateway-scan promptness (Virus 1)", Baseline: baseline}
	for _, delay := range []time.Duration{48 * time.Hour, 24 * time.Hour, 12 * time.Hour, 6 * time.Hour, 3 * time.Hour, time.Hour} {
		cfg := s.paperConfig(virus.Virus1())
		cfg.Responses = []mms.ResponseFactory{response.NewScan(delay)}
		sweep.Points = append(sweep.Points, SweepPoint{
			Strength: 1 / delay.Hours(),
			Label:    fmt.Sprintf("delay %v", delay),
			Config:   cfg,
		})
	}
	return sweep
}

// DetectorReturnsSweep sweeps the detector accuracy against Virus 2.
func DetectorReturnsSweep(s Scale) Sweep {
	baseline := s.paperConfig(virus.Virus2())
	sweep := Sweep{Name: "gateway-detector accuracy (Virus 2)", Baseline: baseline}
	for _, acc := range []float64{0.80, 0.90, 0.95, 0.99, 0.999} {
		cfg := s.paperConfig(virus.Virus2())
		cfg.Responses = []mms.ResponseFactory{response.NewDetector(acc, response.DefaultAnalysisDelay)}
		sweep.Points = append(sweep.Points, SweepPoint{
			Strength: acc,
			Label:    fmt.Sprintf("accuracy %.3f", acc),
			Config:   cfg,
		})
	}
	return sweep
}

// MonitorReturnsSweep sweeps the monitoring forced wait against Virus 3.
func MonitorReturnsSweep(s Scale) Sweep {
	baseline := s.paperConfig(virus.Virus3())
	sweep := Sweep{Name: "monitoring forced wait (Virus 3)", Baseline: baseline}
	for _, wait := range []time.Duration{5 * time.Minute, 15 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour} {
		cfg := s.paperConfig(virus.Virus3())
		cfg.Responses = []mms.ResponseFactory{response.NewMonitor(wait)}
		sweep.Points = append(sweep.Points, SweepPoint{
			Strength: wait.Hours(),
			Label:    fmt.Sprintf("wait %v", wait),
			Config:   cfg,
		})
	}
	return sweep
}

// ImmunizerReturnsSweep sweeps the deployment window (strength = 1/window)
// at 24 h development against Virus 4, the paper's bandwidth-cost tradeoff.
func ImmunizerReturnsSweep(s Scale) Sweep {
	baseline := s.paperConfig(virus.Virus4())
	sweep := Sweep{Name: "immunization deployment speed (Virus 4)", Baseline: baseline}
	for _, window := range []time.Duration{48 * time.Hour, 24 * time.Hour, 6 * time.Hour, time.Hour, 15 * time.Minute} {
		cfg := s.paperConfig(virus.Virus4())
		cfg.Responses = []mms.ResponseFactory{response.NewImmunizer(24*time.Hour, window)}
		sweep.Points = append(sweep.Points, SweepPoint{
			Strength: 1 / window.Hours(),
			Label:    fmt.Sprintf("deploy %v", window),
			Config:   cfg,
		})
	}
	return sweep
}
