// Package experiment defines one runnable experiment per figure of the
// paper's evaluation (Figures 1-7), plus the scaling study mentioned in
// Section 5.3 and the combined-mechanism future-work study from Section 6.
// A harness runs every series of a figure with replications, and reporting
// helpers emit CSV files and terminal charts shaped like the paper's plots.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mms"
	"repro/internal/response"
	"repro/internal/virus"
)

// Series is one curve of a figure: a label and the scenario that produces
// it.
type Series struct {
	// Label names the curve as in the paper's legend.
	Label string
	// Config is the full scenario.
	Config core.Config
}

// Figure is a reproducible experiment: several series sharing axes.
type Figure struct {
	// ID is the paper's figure number, e.g. "figure1".
	ID string
	// Title matches the paper's caption.
	Title string
	// XLabel and YLabel name the axes (always hours vs infection count).
	XLabel, YLabel string
	// Series are the curves, baseline first where applicable.
	Series []Series
}

// Scale shrinks experiments for tests and benchmarks: population and mean
// degree divide by Factor and horizons stay intact. Factor 1 is the paper's
// full size.
type Scale struct {
	// Factor divides the population (1 = paper size).
	Factor int
}

// paperConfig builds the default config for a virus under the scale.
func (s Scale) paperConfig(v virus.Config) core.Config {
	cfg := core.Default(v)
	if s.Factor > 1 {
		cfg.Population /= s.Factor
		cfg.Graph.MeanDegree /= float64(s.Factor)
		if cfg.Graph.MeanDegree < 4 {
			cfg.Graph.MeanDegree = 4
		}
	}
	return cfg
}

// FullScale is the paper's population of 1,000 phones.
var FullScale = Scale{Factor: 1}

// Figure1 is the baseline infection curves of all four viruses without any
// response mechanism.
func Figure1(s Scale) Figure {
	fig := Figure{
		ID:     "figure1",
		Title:  "Figure 1: Baseline Infection Curves without Response Mechanisms",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	for _, v := range virus.Scenarios() {
		fig.Series = append(fig.Series, Series{Label: v.Name, Config: s.paperConfig(v)})
	}
	return fig
}

// Figure2 is the gateway virus scan on Virus 1 with signature activation
// delays of 6, 12, and 24 hours.
func Figure2(s Scale) Figure {
	fig := Figure{
		ID:     "figure2",
		Title:  "Figure 2: Virus Scan: Varying the Activation Time Delay (Virus 1)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	fig.Series = append(fig.Series, Series{Label: "Baseline", Config: s.paperConfig(virus.Virus1())})
	for _, delay := range []time.Duration{6 * time.Hour, 12 * time.Hour, 24 * time.Hour} {
		cfg := s.paperConfig(virus.Virus1())
		cfg.Responses = []mms.ResponseFactory{response.NewScan(delay)}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("%d-Hour Delay", int(delay.Hours())),
			Config: cfg,
		})
	}
	return fig
}

// Figure3 is the gateway detection algorithm on Virus 2 at accuracies 0.80
// through 0.99.
func Figure3(s Scale) Figure {
	fig := Figure{
		ID:     "figure3",
		Title:  "Figure 3: Virus Detection Algorithm: Varying Detection Accuracy (Virus 2)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	fig.Series = append(fig.Series, Series{Label: "Baseline", Config: s.paperConfig(virus.Virus2())})
	for _, acc := range []float64{0.99, 0.95, 0.90, 0.85, 0.80} {
		cfg := s.paperConfig(virus.Virus2())
		cfg.Responses = []mms.ResponseFactory{
			response.NewDetector(acc, response.DefaultAnalysisDelay),
		}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("%.2f Accuracy", acc),
			Config: cfg,
		})
	}
	return fig
}

// Figure4 is phone user education across all four viruses: the baseline
// eventual acceptance of 0.40 versus the educated 0.20.
func Figure4(s Scale) Figure {
	fig := Figure{
		ID:     "figure4",
		Title:  "Figure 4: Phone User Education: Effective for All Viruses",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	for _, v := range virus.Scenarios() {
		fig.Series = append(fig.Series, Series{Label: v.Name, Config: s.paperConfig(v)})
	}
	for _, v := range virus.Scenarios() {
		cfg := s.paperConfig(v)
		cfg.Responses = []mms.ResponseFactory{response.NewEducation(0.20)}
		fig.Series = append(fig.Series, Series{Label: v.Name + " User Ed", Config: cfg})
	}
	return fig
}

// Figure5 is immunization on Virus 4: development 24 or 48 hours crossed
// with deployment windows of 1, 6, and 24 hours. Labels follow the paper's
// "Hours dev-(dev+deploy)" convention.
func Figure5(s Scale) Figure {
	fig := Figure{
		ID:     "figure5",
		Title:  "Figure 5: Immunization Using Patches: Varying the Deployment Times (Virus 4)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	fig.Series = append(fig.Series, Series{Label: "Baseline", Config: s.paperConfig(virus.Virus4())})
	for _, dev := range []time.Duration{24 * time.Hour, 48 * time.Hour} {
		for _, deploy := range []time.Duration{time.Hour, 24 * time.Hour, 6 * time.Hour} {
			cfg := s.paperConfig(virus.Virus4())
			cfg.Responses = []mms.ResponseFactory{response.NewImmunizer(dev, deploy)}
			fig.Series = append(fig.Series, Series{
				Label:  fmt.Sprintf("Hours %d-%d", int(dev.Hours()), int((dev + deploy).Hours())),
				Config: cfg,
			})
		}
	}
	return fig
}

// Figure6 is monitoring on Virus 3 with forced waits of 15, 30, and 60
// minutes.
func Figure6(s Scale) Figure {
	fig := Figure{
		ID:     "figure6",
		Title:  "Figure 6: Monitoring: Varying the Wait Time for Suspicious Phones (Virus 3)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	fig.Series = append(fig.Series, Series{Label: "Baseline", Config: s.paperConfig(virus.Virus3())})
	for _, wait := range []time.Duration{15 * time.Minute, 30 * time.Minute, 60 * time.Minute} {
		cfg := s.paperConfig(virus.Virus3())
		cfg.Responses = []mms.ResponseFactory{response.NewMonitor(wait)}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("%d-Minute Wait", int(wait.Minutes())),
			Config: cfg,
		})
	}
	return fig
}

// Figure7 is blacklisting on Virus 3 with thresholds 10 through 40
// suspected infected messages.
func Figure7(s Scale) Figure {
	fig := Figure{
		ID:     "figure7",
		Title:  "Figure 7: Blacklisting: Varying the Activation Threshold (Virus 3)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	fig.Series = append(fig.Series, Series{Label: "Baseline", Config: s.paperConfig(virus.Virus3())})
	for _, threshold := range []int{10, 20, 30, 40} {
		cfg := s.paperConfig(virus.Virus3())
		cfg.Responses = []mms.ResponseFactory{response.NewBlacklist(threshold)}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("%d Messages", threshold),
			Config: cfg,
		})
	}
	return fig
}

// ScalingStudy reproduces the Section 5.3 remark that the results scale to
// a 2,000-phone population: Virus 1 baselines at 1,000 and 2,000 phones.
// Scaled variants divide both populations.
func ScalingStudy(s Scale) Figure {
	fig := Figure{
		ID:     "scaling",
		Title:  "Section 5.3: Population Scaling (Virus 1 baseline, 1000 vs 2000 phones)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	small := s.paperConfig(virus.Virus1())
	large := small
	large.Population *= 2
	fig.Series = append(fig.Series,
		Series{Label: fmt.Sprintf("%d phones", small.Population), Config: small},
		Series{Label: fmt.Sprintf("%d phones", large.Population), Config: large},
	)
	return fig
}

// CombinedStudy is the paper's stated future-work extension: a response
// that slows the virus (monitoring) paired with one that stops it (gateway
// scan), against fast Virus 3 where neither scan alone nor nothing works.
func CombinedStudy(s Scale) Figure {
	fig := Figure{
		ID:     "combined",
		Title:  "Section 6 extension: Combining Monitoring with a Gateway Scan (Virus 3)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	base := s.paperConfig(virus.Virus3())
	scanOnly := s.paperConfig(virus.Virus3())
	scanOnly.Responses = []mms.ResponseFactory{response.NewScan(6 * time.Hour)}
	monitorOnly := s.paperConfig(virus.Virus3())
	monitorOnly.Responses = []mms.ResponseFactory{response.NewMonitor(15 * time.Minute)}
	both := s.paperConfig(virus.Virus3())
	both.Responses = []mms.ResponseFactory{
		response.NewMonitor(15 * time.Minute),
		response.NewScan(6 * time.Hour),
	}
	fig.Series = append(fig.Series,
		Series{Label: "Baseline", Config: base},
		Series{Label: "Scan only (6h)", Config: scanOnly},
		Series{Label: "Monitor only (15m)", Config: monitorOnly},
		Series{Label: "Monitor + Scan", Config: both},
	)
	return fig
}

// ShardedResponseStudy locks down the sharded response path end to end
// (DESIGN.md §15): Virus 3 on a 4-shard population, unmitigated and under
// the paper's strongest mechanism stack. The populations and mechanisms
// mirror unsharded studies, so the curves double as a visual check that
// barrier-merged responses behave like their unsharded counterparts; the
// committed CSV is regenerated and diffed by nightly CI, pinning the whole
// sharded protocol — canonical exchange order, merged detection, armed
// activation, canonical patch waves — at figure granularity.
func ShardedResponseStudy(s Scale) Figure {
	fig := Figure{
		ID:     "sharded-response",
		Title:  "DESIGN.md §15: Response Mechanisms on the Sharded Path (Virus 3, 4 shards)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	shard := func(cfg core.Config) core.Config {
		cfg.Shards = 4
		cfg.ShardWindow = 15 * time.Minute
		return cfg
	}
	base := shard(s.paperConfig(virus.Virus3()))
	scanOnly := shard(s.paperConfig(virus.Virus3()))
	scanOnly.Responses = []mms.ResponseFactory{response.NewScan(6 * time.Hour)}
	stacked := shard(s.paperConfig(virus.Virus3()))
	stacked.Responses = []mms.ResponseFactory{
		response.NewScan(6 * time.Hour),
		response.NewImmunizer(24*time.Hour, 6*time.Hour),
		response.NewBlacklist(10),
	}
	fig.Series = append(fig.Series,
		Series{Label: "Baseline (4 shards)", Config: base},
		Series{Label: "Scan 6h (4 shards)", Config: scanOnly},
		Series{Label: "Scan + Immunize + Blacklist (4 shards)", Config: stacked},
	)
	return fig
}

// AllFigures returns every paper figure in order.
func AllFigures(s Scale) []Figure {
	return []Figure{
		Figure1(s), Figure2(s), Figure3(s), Figure4(s),
		Figure5(s), Figure6(s), Figure7(s),
	}
}

// AllStudies returns the figures plus the scaling and combined studies and
// the negative-result reproductions.
func AllStudies(s Scale) []Figure {
	studies := append(AllFigures(s), ScalingStudy(s), CombinedStudy(s), ShardedResponseStudy(s))
	return append(studies, NegativeStudies(s)...)
}
