package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mms"
	"repro/internal/rng"
	"repro/internal/store"
)

// This file content-addresses core.Config values so replication results can
// be shared across studies: a Baseline scenario referenced by several
// figures hashes to the same fingerprint everywhere, and the replication
// cache then simulates it once per seed. The address must be sound — two
// configs with equal fingerprints must produce byte-identical results for
// every seed — so the encoding is built exclusively from declarative data:
//
//   - plain fields are written as canonical key=value lines (durations as
//     nanosecond integers, floats in exact hexadecimal, strings quoted);
//   - rng.Dist values are encoded by concrete type and parameters, and only
//     for the distributions this module defines;
//   - response mechanisms are encoded through mms.ResponseDescriber, the
//     opt-in contract that a mechanism's behaviour is fully captured by a
//     parameter string.
//
// Anything opaque — a GraphBuilder or PostRun func, a foreign Dist
// implementation, a factory whose product is not describable — makes the
// config uncacheable rather than guessably hashable. Uncacheable configs
// always run; they only forgo result sharing.
//
// fingerprintSchema versions the encoding: bump it whenever the canonical
// text for an existing config changes meaning, so stale addresses cannot
// collide with new ones (the cache is in-memory only, but sweeps may
// outlive many config generations in one process). Schema 3: responses
// (and background legitimate traffic) now run on the sharded path, so a
// sharded config with responses denotes a real trajectory rather than a
// validation error — and one computed under different barrier semantics
// than any schema-2 address.
const fingerprintSchema = "3"

// Fingerprint is the content address of a core.Config, or the reason it
// has none. The zero value is "not cacheable, no reason recorded".
type Fingerprint struct {
	sum      [sha256.Size]byte
	ok       bool
	opacity  string
	canonLen int
}

// Cacheable reports whether the config hashed cleanly.
func (f Fingerprint) Cacheable() bool { return f.ok }

// StoreKey returns the persistent-store address of one replication of
// this config, or ok=false for uncacheable configs, which never touch
// the store.
func (f Fingerprint) StoreKey(seed uint64) (store.Key, bool) {
	if !f.ok {
		return store.Key{}, false
	}
	return store.Key{Sum: f.sum, Seed: seed}, true
}

// Opacity names the first opaque element that made the config uncacheable;
// empty when Cacheable.
func (f Fingerprint) Opacity() string { return f.opacity }

// String renders the address for logs and tests: a short hash prefix, or
// the opacity reason.
func (f Fingerprint) String() string {
	if !f.ok {
		return "uncacheable(" + f.opacity + ")"
	}
	return hex.EncodeToString(f.sum[:8])
}

// ConfigFingerprint derives cfg's content address. It invokes each response
// factory once to obtain a describable instance; factories are already
// required to be cheap and side-effect-free (they run once per
// replication), so the extra construction is safe.
func ConfigFingerprint(cfg core.Config) Fingerprint {
	w := &fpWriter{}
	w.field("schema", fingerprintSchema)

	w.field("population", strconv.Itoa(cfg.Population))
	w.field("susceptible", hexFloat(cfg.SusceptibleFraction))

	if cfg.GraphBuilder != nil {
		w.opaque("graph-builder func")
	}
	if cfg.CSRBuilder != nil {
		w.opaque("csr-builder func")
	}
	w.field("graph.n", strconv.Itoa(cfg.Graph.N))
	w.field("graph.meandegree", hexFloat(cfg.Graph.MeanDegree))
	w.field("graph.exponent", hexFloat(cfg.Graph.Exponent))
	w.field("graph.mindegree", strconv.Itoa(cfg.Graph.MinDegree))
	w.field("graph.maxdegree", strconv.Itoa(cfg.Graph.MaxDegree))
	w.field("graph.locality", strconv.FormatBool(cfg.Graph.Locality))
	w.field("graph.longrange", hexFloat(cfg.Graph.LongRangeFraction))

	w.field("virus.name", strconv.Quote(cfg.Virus.Name))
	w.field("virus.targeting", strconv.Itoa(int(cfg.Virus.Targeting)))
	w.field("virus.contactorder", strconv.Itoa(int(cfg.Virus.ContactOrder)))
	w.field("virus.recipients", strconv.Itoa(cfg.Virus.RecipientsPerMessage))
	w.field("virus.validfraction", hexFloat(cfg.Virus.ValidNumberFraction))
	w.field("virus.minwait", durNS(cfg.Virus.MinWait))
	w.dist("virus.extrawait", cfg.Virus.ExtraWait)
	w.field("virus.dormancy", durNS(cfg.Virus.Dormancy))
	w.field("virus.quota", strconv.Itoa(int(cfg.Virus.Quota)))
	w.field("virus.perquota", strconv.Itoa(cfg.Virus.MessagesPerQuota))
	w.field("virus.period", durNS(cfg.Virus.Period))
	w.field("virus.periodaligned", strconv.FormatBool(cfg.Virus.PeriodAligned))
	w.dist("virus.reboot", cfg.Virus.RebootInterval)

	w.dist("net.delivery", cfg.Network.DeliveryDelay)
	w.dist("net.read", cfg.Network.ReadDelay)
	w.field("net.acceptance", hexFloat(cfg.Network.AcceptanceFactor))
	w.field("net.detectthreshold", strconv.Itoa(cfg.Network.GatewayDetectThreshold))
	w.field("net.allowduplicates", strconv.FormatBool(cfg.Network.AllowDuplicateTrials))
	w.field("net.lossprob", hexFloat(cfg.Network.DeliveryLossProb))
	w.dist("net.legit", cfg.Network.LegitSendInterval)
	w.schedule("net.faults", cfg.Network.Faults)

	// cfg.Faults overrides Network.Faults at run time; both participate in
	// the address so either wiring hashes distinctly.
	w.schedule("faults", cfg.Faults)

	for i, factory := range cfg.Responses {
		key := "response." + strconv.Itoa(i)
		if factory == nil {
			w.opaque(key + " nil factory")
			continue
		}
		r := factory()
		if r == nil {
			w.opaque(key + " factory built nil")
			continue
		}
		d, ok := r.(mms.ResponseDescriber)
		if !ok {
			w.opaque(key + " (" + r.Name() + ") has no descriptor")
			continue
		}
		w.field(key, strconv.Quote(d.Descriptor()))
	}

	w.field("seeds", strconv.Itoa(cfg.InitialInfected))
	w.field("horizon", durNS(cfg.Horizon))

	// The shard partition and exchange window shape the trajectory (the
	// conservative-window protocol clamps cross-shard arrivals to barriers),
	// so they are part of the address. ShardWorkers is deliberately absent:
	// pool width is pure scheduling and never perturbs results (pinned by
	// TestShardedRunDeterministicAcrossWorkerCounts).
	w.field("shards", strconv.Itoa(cfg.Shards))
	w.field("shardwindow", durNS(cfg.ShardWindow))

	if cfg.PostRun != nil {
		w.opaque("post-run hook")
	}

	return w.fingerprint()
}

// fpWriter accumulates the canonical text and the first opacity reason.
type fpWriter struct {
	b       strings.Builder
	opacity string
}

func (w *fpWriter) field(key, value string) {
	w.b.WriteString(key)
	w.b.WriteByte('=')
	w.b.WriteString(value)
	w.b.WriteByte('\n')
}

func (w *fpWriter) opaque(reason string) {
	if w.opacity == "" {
		w.opacity = reason
	}
}

// dist writes a distribution field, or marks the config opaque for
// distribution types this module does not define.
func (w *fpWriter) dist(key string, d rng.Dist) {
	switch v := d.(type) {
	case nil:
		w.field(key, "nil")
	case rng.Constant:
		w.field(key, "const("+durNS(v.V)+")")
	case rng.Exponential:
		w.field(key, "exp("+durNS(v.MeanD)+")")
	case rng.UniformDist:
		w.field(key, "uniform("+durNS(v.Lo)+","+durNS(v.Hi)+")")
	default:
		w.opaque(key + " has opaque distribution " + v.String())
	}
}

// schedule writes a fault schedule field by walking its declarative parts.
func (w *fpWriter) schedule(key string, s *faults.Schedule) {
	if s == nil {
		w.field(key, "nil")
		return
	}
	for i, win := range s.Outages {
		w.field(key+".outage."+strconv.Itoa(i),
			durNS(win.Start)+","+durNS(win.End)+","+hexFloat(win.Capacity))
	}
	w.field(key+".retry", strconv.Itoa(s.Retry.MaxAttempts)+","+
		durNS(s.Retry.Base)+","+durNS(s.Retry.Max)+","+hexFloat(s.Retry.Jitter))
	w.dist(key+".churn.up", s.Churn.UpTime)
	w.dist(key+".churn.down", s.Churn.DownTime)
	w.field(key+".drain", durNS(s.DrainSpread))
}

func (w *fpWriter) fingerprint() Fingerprint {
	if w.opacity != "" {
		return Fingerprint{opacity: w.opacity}
	}
	canon := w.b.String()
	return Fingerprint{
		sum:      sha256.Sum256([]byte(canon)),
		ok:       true,
		canonLen: len(canon),
	}
}

// hexFloat renders a float exactly ('x' format round-trips every bit), so
// fingerprints never merge configs that differ below decimal precision.
func hexFloat(f float64) string {
	return strconv.FormatFloat(f, 'x', -1, 64)
}

// durNS renders a duration as integer nanoseconds.
func durNS(d time.Duration) string {
	return strconv.FormatInt(int64(d), 10)
}
