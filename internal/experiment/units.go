package experiment

import (
	"context"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/workq"
)

// This file bridges the study matrix to the distributed work queue: the
// coordinator enumerates every cacheable (fingerprint, seed) replication
// into workq units, and workers resolve those units back to configs by
// rebuilding the same matrix from the manifest's spec. The fingerprint is
// the contract between the two: a worker that derives a different config
// for the same (figure, series) — version skew between binaries — produces
// a different fingerprint, fails the unit permanently, and the coordinator
// recomputes it locally instead of trusting a mismatched result.

// SelectStudies resolves a figure selector as the CLIs expose it: "all"
// for the whole matrix, or one study ID.
func SelectStudies(figureID string, sc Scale) ([]Figure, error) {
	if figureID == "all" {
		return AllStudies(sc), nil
	}
	for _, f := range AllStudies(sc) {
		if f.ID == figureID {
			return []Figure{f}, nil
		}
	}
	return nil, fmt.Errorf("experiment: unknown figure %q", figureID)
}

// SweepUnits enumerates the distributable units of a sweep: one per
// distinct (fingerprint, seed) pair, in deterministic matrix order, with
// scenarios shared across studies deduplicated exactly as the replication
// cache would. Series whose configs are uncacheable (opaque elements, no
// fingerprint) cannot be addressed in a store and are skipped — the
// coordinator computes them locally at assembly; their count is returned.
func SweepUnits(figs []Figure, opts core.Options) (units []workq.Unit, uncacheableSeries int) {
	opts = opts.WithDefaults()
	seen := make(map[string]bool)
	for _, fig := range figs {
		for si, s := range fig.Series {
			fp := ConfigFingerprint(s.Config)
			if !fp.Cacheable() {
				uncacheableSeries++
				continue
			}
			for r := 0; r < opts.Replications; r++ {
				seed := core.ReplicationSeed(opts.BaseSeed, r)
				key, _ := fp.StoreKey(seed)
				id := key.String()
				if seen[id] {
					continue
				}
				seen[id] = true
				units = append(units, workq.Unit{
					Index:  len(units),
					Fig:    fig.ID,
					Series: si,
					Rep:    r,
					FP:     hex.EncodeToString(key.Sum[:]),
					Seed:   seed,
				})
			}
		}
	}
	return units, uncacheableSeries
}

// UnitRunner returns the workq callback that executes one manifest unit:
// resolve the unit's fingerprint to a config from this binary's study
// matrix, skip if the store already holds the result (another worker, or a
// previous run), otherwise simulate, publish atomically, and journal. Any
// error — unknown fingerprint, simulation failure, store I/O — surfaces to
// workq's retry/dead-letter policy.
func UnitRunner(st store.Store, j *store.Journal, figs []Figure) workq.RunFunc {
	cfgByFP := make(map[string]core.Config)
	for _, fig := range figs {
		for _, s := range fig.Series {
			fp := ConfigFingerprint(s.Config)
			key, ok := fp.StoreKey(0)
			if !ok {
				continue
			}
			cfgByFP[hex.EncodeToString(key.Sum[:])] = s.Config
		}
	}
	return func(ctx context.Context, u workq.Unit) error {
		cfg, ok := cfgByFP[u.FP]
		if !ok {
			return fmt.Errorf("experiment: unit %d (%s series %d rep %d) fingerprint %.16s… not derivable from this binary's study matrix: coordinator/worker version skew",
				u.Index, u.Fig, u.Series, u.Rep, u.FP)
		}
		key, err := u.Key()
		if err != nil {
			return err
		}
		if res, ok, err := st.Get(ctx, key); err == nil && ok && res != nil {
			return nil // already durable: ack without recomputing
		}
		res, repErr := core.RunReplication(ctx, cfg, u.Rep, u.Seed)
		if repErr != nil {
			return repErr
		}
		if err := st.Put(ctx, key, res); err != nil {
			return err
		}
		if j != nil {
			// A failed journal append costs only resume bookkeeping — the
			// result itself is durable — so it is deliberately not fatal.
			_ = j.Append(ctx, key)
		}
		return nil
	}
}
