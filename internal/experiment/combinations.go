package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mms"
	"repro/internal/pool"
	"repro/internal/response"
	"repro/internal/virus"
)

// Section 6 proposes evaluating "combinations of reaction mechanisms,
// particularly when a response mechanism that only slows virus propagation
// requires a secondary mechanism to completely halt virus spread". Beyond
// the single monitor+scan pair of CombinedStudy, this file evaluates the
// full pairwise matrix of representative mechanism variants against a
// chosen virus and ranks singles and pairs by containment.

// MechanismVariant is one representative configuration of a mechanism.
type MechanismVariant struct {
	// Name labels the variant.
	Name string
	// Factory builds the response.
	Factory mms.ResponseFactory
}

// RepresentativeVariants returns one mid-strength variant per mechanism,
// as studied in the paper's figures.
func RepresentativeVariants() []MechanismVariant {
	return []MechanismVariant{
		{Name: "scan 6h", Factory: response.NewScan(6 * time.Hour)},
		{Name: "detector 0.95", Factory: response.NewDetector(0.95, response.DefaultAnalysisDelay)},
		{Name: "education 0.20", Factory: response.NewEducation(0.20)},
		{Name: "immunize 24h+6h", Factory: response.NewImmunizer(24*time.Hour, 6*time.Hour)},
		{Name: "monitor 15m", Factory: response.NewMonitor(15 * time.Minute)},
		{Name: "blacklist 20", Factory: response.NewBlacklist(20)},
	}
}

// CombinationResult is one evaluated single or pair.
type CombinationResult struct {
	// Names lists the combined mechanisms (1 or 2 entries).
	Names []string
	// FinalInfected is the mean final infection count.
	FinalInfected float64
	// Synergy, for pairs, is how much the pair beats its better single:
	// min(single finals) − pair final. Positive means the combination
	// helps beyond its best component.
	Synergy float64
}

// RunCombinationMatrix evaluates the baseline, every single variant, and
// every unordered pair against the virus, returning results sorted by
// final infections (best first) with the baseline last. The whole matrix
// — baseline, singles, and pairs — is flattened onto one worker pool
// (opts.Parallelism wide) with a replication cache, so scenarios the
// matrix shares with itself are simulated once and nothing waits on a
// per-scenario barrier.
func RunCombinationMatrix(s Scale, v virus.Config, variants []MechanismVariant, opts core.Options) ([]CombinationResult, float64, error) {
	if len(variants) < 2 {
		return nil, 0, fmt.Errorf("experiment: combination matrix needs >= 2 variants")
	}
	opts = opts.WithDefaults()
	p := pool.New(opts.Parallelism)
	defer p.Close()
	cache := NewReplicationCache()
	submit := func(factories ...mms.ResponseFactory) *seriesJob {
		cfg := s.paperConfig(v)
		cfg.Responses = factories
		return submitSeries(p, context.Background(), cache, cfg, opts)
	}

	baseJob := submit()
	singleJobs := make([]*seriesJob, len(variants))
	for i, m := range variants {
		singleJobs[i] = submit(m.Factory)
	}
	type pair struct {
		a, b int
		job  *seriesJob
	}
	var pairJobs []pair
	for i := 0; i < len(variants); i++ {
		for j := i + 1; j < len(variants); j++ {
			pairJobs = append(pairJobs, pair{a: i, b: j,
				job: submit(variants[i].Factory, variants[j].Factory)})
		}
	}

	baseRun, err := baseJob.wait()
	if err != nil {
		return nil, 0, fmt.Errorf("experiment: combination baseline: %w", err)
	}
	baseline := baseRun.FinalMean()

	singles := make(map[string]float64, len(variants))
	results := make([]CombinationResult, 0, len(variants)*(len(variants)+1)/2)
	for i, m := range variants {
		rs, err := singleJobs[i].wait()
		if err != nil {
			return nil, 0, fmt.Errorf("experiment: combination %v: %w", []string{m.Name}, err)
		}
		singles[m.Name] = rs.FinalMean()
		results = append(results, CombinationResult{
			Names:         []string{m.Name},
			FinalInfected: rs.FinalMean(),
		})
	}
	for _, pj := range pairJobs {
		a, b := variants[pj.a], variants[pj.b]
		rs, err := pj.job.wait()
		if err != nil {
			return nil, 0, fmt.Errorf("experiment: combination %v: %w", []string{a.Name, b.Name}, err)
		}
		final := rs.FinalMean()
		best := singles[a.Name]
		if singles[b.Name] < best {
			best = singles[b.Name]
		}
		results = append(results, CombinationResult{
			Names:         []string{a.Name, b.Name},
			FinalInfected: final,
			Synergy:       best - final,
		})
	}
	sort.SliceStable(results, func(x, y int) bool {
		return results[x].FinalInfected < results[y].FinalInfected
	})
	return results, baseline, nil
}
