package experiment

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/mms"
	"repro/internal/store"
)

// figureCSV runs one small figure through the sweep with the given cache
// and returns its CSV bytes plus the cache stats.
func figureCSV(t *testing.T, cache *ReplicationCache) ([]byte, CacheStats) {
	t.Helper()
	fig := Figure1(Scale{Factor: 20})
	opts := core.Options{Replications: 2, GridPoints: 20, BaseSeed: 1}
	fr, err := RunFigureCached(context.Background(), fig, opts, cache)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), cache.Stats()
}

func openStore(t *testing.T, dir string, opts store.DiskOptions) *store.DiskStore {
	t.Helper()
	s, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func openJournal(t *testing.T, s *store.DiskStore, resume bool) (*store.Journal, []store.Key) {
	t.Helper()
	j, done, err := store.OpenJournal(nil, s.JournalPath(), resume)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j, done
}

// TestPersistentCacheColdThenWarm is the persistence contract end to end:
// a second process-equivalent run against the same store simulates
// nothing, replays everything from disk, and produces byte-identical CSV
// output.
func TestPersistentCacheColdThenWarm(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()

	s1 := openStore(t, dir, store.DiskOptions{})
	j1, done := openJournal(t, s1, false)
	if len(done) != 0 {
		t.Fatalf("fresh journal replayed %d units", len(done))
	}
	cold, coldStats := figureCSV(t, NewPersistentCache(s1, j1))
	if coldStats.Misses == 0 {
		t.Fatal("cold run simulated nothing")
	}
	if coldStats.DiskHits != 0 {
		t.Fatalf("cold run claims %d disk hits", coldStats.DiskHits)
	}

	// "New process": fresh memory cache, same store directory.
	s2 := openStore(t, dir, store.DiskOptions{})
	j2, done := openJournal(t, s2, true)
	if uint64(len(done)) != coldStats.Misses {
		t.Errorf("journal replayed %d units, cold run computed %d", len(done), coldStats.Misses)
	}
	warm, warmStats := figureCSV(t, NewPersistentCache(s2, j2))
	if !bytes.Equal(cold, warm) {
		t.Error("warm run produced different CSV bytes than the cold run")
	}
	if warmStats.Misses != 0 {
		t.Errorf("warm run simulated %d replications", warmStats.Misses)
	}
	if warmStats.DiskHits != coldStats.Misses {
		t.Errorf("warm run: %d disk hits, want %d", warmStats.DiskHits, coldStats.Misses)
	}
}

// TestPersistentCacheCorruptEntryRecomputed: a bit-flipped entry under a
// warm store is quarantined and recomputed; output bytes are unchanged.
func TestPersistentCacheCorruptEntryRecomputed(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	s1 := openStore(t, dir, store.DiskOptions{})
	cold, _ := figureCSV(t, NewPersistentCache(s1, nil))

	ffs := store.NewFaultFS(nil)
	s2 := openStore(t, dir, store.DiskOptions{FS: ffs})
	ffs.CorruptReadIn(1)
	warm, stats := figureCSV(t, NewPersistentCache(s2, nil))
	if !bytes.Equal(cold, warm) {
		t.Error("corruption changed output bytes")
	}
	if stats.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", stats.Quarantined)
	}
	if stats.Misses != 1 {
		t.Errorf("misses = %d, want exactly the quarantined unit recomputed", stats.Misses)
	}
}

// TestPersistentCacheUnwritableStoreStillAnswers: every write failing
// leaves the store cold but the sweep correct.
func TestPersistentCacheUnwritableStoreStillAnswers(t *testing.T) {
	t.Parallel()

	ref, _ := figureCSV(t, NewReplicationCache())

	ffs := store.NewFaultFS(nil)
	s := openStore(t, t.TempDir(), store.DiskOptions{FS: ffs})
	cache := NewPersistentCache(s, nil)
	// One failed publish proves the degradation path: the unit's result
	// is still served from memory and the store merely stays cold for it.
	// The rename failpoint is used because only object publication
	// renames — write faults could land on a lease file instead.
	ffs.FailRenameIn(1)
	got, stats := figureCSV(t, cache)
	if !bytes.Equal(ref, got) {
		t.Error("write-degraded store changed output bytes")
	}
	if stats.StoreErrors == 0 {
		t.Error("failed put not counted in StoreErrors")
	}
}

// TestUncacheableConfigBypassesStore: opaque configs never touch disk.
func TestUncacheableConfigBypassesStore(t *testing.T) {
	t.Parallel()

	s := openStore(t, t.TempDir(), store.DiskOptions{})
	cache := NewPersistentCache(s, nil)
	fig := Figure1(Scale{Factor: 20})
	for i := range fig.Series {
		fig.Series[i].Config.PostRun = func(*mms.Network) {}
	}
	opts := core.Options{Replications: 2, GridPoints: 20, BaseSeed: 1}
	if _, err := RunFigureCached(context.Background(), fig, opts, cache); err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.Uncacheable == 0 {
		t.Error("opaque config not counted as uncacheable")
	}
	if ps := s.Stats(); ps.Puts != 0 || ps.Misses != 0 {
		t.Errorf("uncacheable config touched the store: %+v", ps)
	}
}
