package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/virus"
)

func TestCombinationMatrixValidation(t *testing.T) {
	t.Parallel()

	variants := RepresentativeVariants()
	if _, _, err := RunCombinationMatrix(testScale, virus.Virus3(), variants[:1], testOpts); err == nil {
		t.Error("single-variant matrix accepted")
	}
}

func TestCombinationMatrixScaled(t *testing.T) {
	t.Parallel()

	variants := RepresentativeVariants()[:3] // keep the scaled run small
	results, baseline, err := RunCombinationMatrix(testScale, virus.Virus3(), variants, core.Options{Replications: 2, GridPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 3 singles + 3 pairs.
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	if baseline <= 0 {
		t.Fatal("baseline has no infections")
	}
	// Sorted ascending by final infections.
	for i := 1; i < len(results); i++ {
		if results[i].FinalInfected < results[i-1].FinalInfected {
			t.Fatalf("results not sorted at %d", i)
		}
	}
	// Pairs carry names of both members.
	pairs := 0
	for _, r := range results {
		if len(r.Names) == 2 {
			pairs++
		}
	}
	if pairs != 3 {
		t.Errorf("got %d pairs, want 3", pairs)
	}
}

// TestPaperClaimsCombinationMatrix verifies at full scale the Section 6
// motivation: against Virus 3, the best pair beats the best single
// mechanism, and a slowing mechanism (monitoring) appears in it.
func TestPaperClaimsCombinationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	results, baseline, err := RunCombinationMatrix(
		FullScale, virus.Virus3(), RepresentativeVariants(),
		core.Options{Replications: 3, GridPoints: 40})
	if err != nil {
		t.Fatal(err)
	}
	var bestSingle, bestPair *CombinationResult
	for i := range results {
		r := &results[i]
		switch len(r.Names) {
		case 1:
			if bestSingle == nil || r.FinalInfected < bestSingle.FinalInfected {
				bestSingle = r
			}
		case 2:
			if bestPair == nil || r.FinalInfected < bestPair.FinalInfected {
				bestPair = r
			}
		}
	}
	if bestSingle == nil || bestPair == nil {
		t.Fatal("missing singles or pairs")
	}
	t.Logf("baseline %.1f; best single %v = %.1f; best pair %v = %.1f (synergy %.1f)",
		baseline, bestSingle.Names, bestSingle.FinalInfected,
		bestPair.Names, bestPair.FinalInfected, bestPair.Synergy)
	if bestPair.FinalInfected > bestSingle.FinalInfected {
		t.Errorf("best pair (%.1f) worse than best single (%.1f)",
			bestPair.FinalInfected, bestSingle.FinalInfected)
	}
	if bestSingle.FinalInfected >= baseline {
		t.Error("no single mechanism helped at all")
	}
}
