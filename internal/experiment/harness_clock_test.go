package experiment

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/virus"
)

// TestElapsedUsesInjectedClock pins the harness's clock injection: Elapsed
// is measured through the package clock, so a deterministic clock yields a
// deterministic Elapsed (and sim results never depend on the wall clock).
func TestElapsedUsesInjectedClock(t *testing.T) {
	orig := timeNow
	t.Cleanup(func() { timeNow = orig })
	// Two reads per RunFigureContext (start, end), 3s apart.
	timeNow = clock.Stepped(time.Unix(0, 0).UTC(), 3*time.Second)

	cfg := Scale{Factor: 20}.paperConfig(virus.Virus3())
	cfg.Horizon = time.Hour
	fig := Figure{
		ID:     "clock-test",
		Title:  "clock",
		Series: []Series{{Label: "baseline", Config: cfg}},
	}
	fr, err := RunFigure(fig, core.Options{Replications: 1, GridPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Elapsed != 3*time.Second {
		t.Fatalf("Elapsed = %v through stepped clock, want 3s", fr.Elapsed)
	}
}
