package experiment

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestTradeoffValidation(t *testing.T) {
	t.Parallel()

	tc := DefaultTradeoffConfig(testScale)
	tc.Thresholds = nil
	if _, err := RunMonitorTradeoff(tc, testOpts); err == nil {
		t.Error("empty thresholds accepted")
	}
	tc = DefaultTradeoffConfig(testScale)
	tc.Window = 0
	if _, err := RunMonitorTradeoff(tc, testOpts); err == nil {
		t.Error("zero window accepted")
	}
	tc = DefaultTradeoffConfig(testScale)
	tc.LegitMeanInterval = -time.Second
	if _, err := RunMonitorTradeoff(tc, testOpts); err == nil {
		t.Error("negative legit interval accepted")
	}
}

func TestTradeoffScaled(t *testing.T) {
	t.Parallel()

	tc := DefaultTradeoffConfig(testScale)
	points, err := RunMonitorTradeoff(tc, core.Options{Replications: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(tc.Thresholds) {
		t.Fatalf("got %d points, want %d", len(points), len(tc.Thresholds))
	}
	for _, p := range points {
		if p.FinalInfected < 1 {
			t.Errorf("threshold %d: no infections recorded", p.Threshold)
		}
		if p.FalsePositives < 0 || p.TruePositives < 0 {
			t.Errorf("threshold %d: negative counts", p.Threshold)
		}
	}
}

// TestPaperClaimsMonitorTradeoff verifies the Section 3.3 trade-off at full
// scale: raising the threshold cuts false positives (the paper's stated
// reason to keep it high) while weakening containment (the reason to keep
// it low).
func TestPaperClaimsMonitorTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	tc := DefaultTradeoffConfig(FullScale)
	tc.Thresholds = []int{1, 8}
	points, err := RunMonitorTradeoff(tc, core.Options{Replications: 3})
	if err != nil {
		t.Fatal(err)
	}
	strict, lax := points[0], points[1]
	if strict.FalsePositives <= lax.FalsePositives {
		t.Errorf("stricter threshold should raise false positives: %v (t=1) vs %v (t=8)",
			strict.FalsePositives, lax.FalsePositives)
	}
	if strict.FinalInfected >= lax.FinalInfected {
		t.Errorf("stricter threshold should contain more: %v (t=1) vs %v (t=8)",
			strict.FinalInfected, lax.FinalInfected)
	}
	t.Logf("threshold 1: final=%.1f FP=%.1f TP=%.1f", strict.FinalInfected, strict.FalsePositives, strict.TruePositives)
	t.Logf("threshold 8: final=%.1f FP=%.1f TP=%.1f", lax.FinalInfected, lax.FalsePositives, lax.TruePositives)
}
