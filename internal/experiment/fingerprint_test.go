package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/mms"
	"repro/internal/response"
	"repro/internal/rng"
	"repro/internal/virus"
)

// Every config the paper studies must be cacheable, or the sweep cache
// silently degrades to a no-op for the workloads it exists for.
func TestAllStudiesCacheable(t *testing.T) {
	for _, fig := range AllStudies(FullScale) {
		for _, s := range fig.Series {
			fp := ConfigFingerprint(s.Config)
			if !fp.Cacheable() {
				t.Errorf("%s / %s: uncacheable: %s", fig.ID, s.Label, fp.Opacity())
			}
		}
	}
}

// Two independently built copies of the same study must share addresses:
// the factories are distinct closures, but their products describe
// identically. This is the property that lets Figure 4 reuse Figure 1's
// baselines.
func TestFingerprintStableAcrossConstruction(t *testing.T) {
	a, b := Figure1(FullScale), Figure1(FullScale)
	for i := range a.Series {
		fa := ConfigFingerprint(a.Series[i].Config)
		fb := ConfigFingerprint(b.Series[i].Config)
		if !fa.Cacheable() || !fb.Cacheable() {
			t.Fatalf("series %d uncacheable: %s / %s", i, fa, fb)
		}
		if fa.sum != fb.sum {
			t.Errorf("series %d: same scenario, different addresses %s vs %s", i, fa, fb)
		}
	}
}

// Any declarative difference must produce a distinct address; a collision
// here would silently serve one scenario's results as another's.
func TestFingerprintDistinguishesConfigs(t *testing.T) {
	base := func() core.Config { return testScale.paperConfig(virus.Virus1()) }
	mutations := map[string]func(*core.Config){
		"population":   func(c *core.Config) { c.Population++ },
		"susceptible":  func(c *core.Config) { c.SusceptibleFraction += 0.01 },
		"graph-degree": func(c *core.Config) { c.Graph.MeanDegree++ },
		"virus":        func(c *core.Config) { c.Virus = virus.Virus3() },
		"loss":         func(c *core.Config) { c.Network.DeliveryLossProb = 0.125 },
		"horizon":      func(c *core.Config) { c.Horizon += time.Hour },
		"seeds":        func(c *core.Config) { c.InitialInfected++ },
		"response": func(c *core.Config) {
			c.Responses = []mms.ResponseFactory{response.NewScan(6 * time.Hour)}
		},
		"response-param": func(c *core.Config) {
			c.Responses = []mms.ResponseFactory{response.NewScan(12 * time.Hour)}
		},
		"faults": func(c *core.Config) {
			c.Faults = &faults.Schedule{Outages: []faults.Window{{End: time.Hour}}}
		},
		"legit-traffic": func(c *core.Config) {
			c.Network.LegitSendInterval = rng.Exponential{MeanD: 25 * time.Minute}
		},
		"shards":       func(c *core.Config) { c.Shards = 4 },
		"shard-window": func(c *core.Config) { c.Shards = 4; c.ShardWindow = time.Hour },
	}
	seen := map[string]string{ConfigFingerprint(base()).String(): "base"}
	for name, mutate := range mutations {
		cfg := base()
		mutate(&cfg)
		fp := ConfigFingerprint(cfg)
		if !fp.Cacheable() {
			t.Errorf("%s: uncacheable: %s", name, fp.Opacity())
			continue
		}
		if prev, dup := seen[fp.String()]; dup {
			t.Errorf("%s collides with %s at %s", name, prev, fp)
		}
		seen[fp.String()] = name
	}
}

// opaqueDist is a distribution the fingerprint module does not know; its
// behaviour cannot be derived from its String.
type opaqueDist struct{}

func (opaqueDist) Sample(*rng.Source) time.Duration { return time.Second }
func (opaqueDist) Mean() time.Duration              { return time.Second }
func (opaqueDist) String() string                   { return "opaque" }

// undescribedResponse is a Response without a Descriptor.
type undescribedResponse struct{}

func (undescribedResponse) Name() string                           { return "undescribed" }
func (undescribedResponse) Attach(*mms.Network, *rng.Source) error { return nil }

// Every opaque element must defeat caching — hashing a func or a foreign
// type would address behaviour the encoding cannot see.
func TestFingerprintOpaque(t *testing.T) {
	cases := map[string]struct {
		mutate func(*core.Config)
		want   string
	}{
		"graph-builder": {func(c *core.Config) {
			c.GraphBuilder = func(src *rng.Source) (*graph.Graph, error) { return nil, nil }
		}, "graph-builder"},
		"csr-builder": {func(c *core.Config) {
			c.CSRBuilder = func(src *rng.Source) (*graph.CSR, error) { return nil, nil }
		}, "csr-builder"},
		"post-run": {func(c *core.Config) {
			c.PostRun = func(*mms.Network) {}
		}, "post-run"},
		"foreign-dist": {func(c *core.Config) {
			c.Virus.ExtraWait = opaqueDist{}
		}, "opaque distribution"},
		"nil-factory": {func(c *core.Config) {
			c.Responses = []mms.ResponseFactory{nil}
		}, "nil factory"},
		"nil-product": {func(c *core.Config) {
			c.Responses = []mms.ResponseFactory{func() mms.Response { return nil }}
		}, "built nil"},
		"undescribed-response": {func(c *core.Config) {
			c.Responses = []mms.ResponseFactory{func() mms.Response { return undescribedResponse{} }}
		}, "no descriptor"},
	}
	for name, tc := range cases {
		cfg := testScale.paperConfig(virus.Virus1())
		tc.mutate(&cfg)
		fp := ConfigFingerprint(cfg)
		if fp.Cacheable() {
			t.Errorf("%s: config with opaque element hashed cleanly to %s", name, fp)
			continue
		}
		if !strings.Contains(fp.Opacity(), tc.want) {
			t.Errorf("%s: opacity %q does not mention %q", name, fp.Opacity(), tc.want)
		}
	}
}

// The fingerprint walks config structs field by explicit field, so a new
// field silently missing from the walk would let two behaviourally
// different configs share an address. This pin fails when any hashed
// struct gains or loses a field, forcing ConfigFingerprint (and
// fingerprintSchema) to be revisited.
func TestFingerprintFieldCoverage(t *testing.T) {
	pins := map[string]struct {
		typ  reflect.Type
		want []string
	}{
		"core.Config": {reflect.TypeOf(core.Config{}), []string{
			"Population", "SusceptibleFraction", "Graph", "GraphBuilder",
			"CSRBuilder", "Virus", "Network", "Responses", "Faults",
			"InitialInfected", "Horizon", "PostRun", "Shards",
			"ShardWindow", "ShardWorkers",
		}},
		"virus.Config": {reflect.TypeOf(virus.Config{}), []string{
			"Name", "Targeting", "ContactOrder", "RecipientsPerMessage",
			"ValidNumberFraction", "MinWait", "ExtraWait", "Dormancy",
			"Quota", "MessagesPerQuota", "Period", "PeriodAligned",
			"RebootInterval",
		}},
		"mms.Config": {reflect.TypeOf(mms.Config{}), []string{
			"DeliveryDelay", "ReadDelay", "AcceptanceFactor",
			"GatewayDetectThreshold", "AllowDuplicateTrials",
			"DeliveryLossProb", "LegitSendInterval", "Faults",
		}},
		"graph.PowerLawConfig": {reflect.TypeOf(graph.PowerLawConfig{}), []string{
			"N", "MeanDegree", "Exponent", "MinDegree", "MaxDegree",
			"Locality", "LongRangeFraction",
		}},
		"faults.Schedule": {reflect.TypeOf(faults.Schedule{}), []string{
			"Outages", "Retry", "Churn", "DrainSpread",
		}},
		"faults.Window": {reflect.TypeOf(faults.Window{}), []string{
			"Start", "End", "Capacity",
		}},
		"faults.RetryPolicy": {reflect.TypeOf(faults.RetryPolicy{}), []string{
			"MaxAttempts", "Base", "Max", "Jitter",
		}},
		"faults.Churn": {reflect.TypeOf(faults.Churn{}), []string{
			"UpTime", "DownTime",
		}},
	}
	for name, pin := range pins {
		var got []string
		for i := 0; i < pin.typ.NumField(); i++ {
			got = append(got, pin.typ.Field(i).Name)
		}
		if !reflect.DeepEqual(got, pin.want) {
			t.Errorf("%s fields changed:\n got  %v\n want %v\nupdate ConfigFingerprint and bump fingerprintSchema before re-pinning",
				name, got, pin.want)
		}
	}
}
