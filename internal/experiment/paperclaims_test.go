package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mms"
	"repro/internal/response"
	"repro/internal/virus"
)

// fullOpts runs the claims at the paper's population with enough
// replications for stable orderings while staying CI-friendly.
var fullOpts = core.Options{Replications: 4, GridPoints: 100}

// TestPaperClaimsScan verifies the Figure 2 statements at full scale.
func TestPaperClaimsScan(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(Figure2(FullScale), fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	checks, cerr := CheckScanClaims(fr)
	assertChecks(t, checks, cerr)
}

// TestPaperClaimsDetector verifies the Figure 3 statements at full scale.
func TestPaperClaimsDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(Figure3(FullScale), fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	checks, cerr := CheckDetectorClaims(fr)
	assertChecks(t, checks, cerr)
}

// TestPaperClaimsEducation verifies the Figure 4 statements at full scale.
func TestPaperClaimsEducation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(Figure4(FullScale), fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	checks, cerr := CheckEducationClaims(fr)
	assertChecks(t, checks, cerr)
}

// TestPaperClaimsImmunization verifies the Figure 5 statements at full
// scale.
func TestPaperClaimsImmunization(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(Figure5(FullScale), fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	checks, cerr := CheckImmunizationClaims(fr)
	assertChecks(t, checks, cerr)
}

// TestPaperClaimsMonitoring verifies the Figure 6 statements at full scale.
func TestPaperClaimsMonitoring(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(Figure6(FullScale), fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	checks, cerr := CheckMonitoringClaims(fr)
	assertChecks(t, checks, cerr)
}

// TestPaperClaimsBlacklist verifies the Figure 7 statements at full scale.
func TestPaperClaimsBlacklist(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(Figure7(FullScale), fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	checks, cerr := CheckBlacklistClaims(fr)
	assertChecks(t, checks, cerr)
}

// TestPaperClaimsEducationQuarter verifies the Section 5.2 text statement
// that a 0.10 eventual acceptance produces a final infection level at
// one-quarter the baseline.
func TestPaperClaimsEducationQuarter(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fig := Figure{
		ID:     "education-quarter",
		Title:  "Education at 0.10 eventual acceptance (Virus 3)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	base := FullScale.paperConfig(virusByName(t, "Virus 3"))
	educated := FullScale.paperConfig(virusByName(t, "Virus 3"))
	educated.Responses = []mms.ResponseFactory{response.NewEducation(0.10)}
	fig.Series = []Series{
		{Label: "Baseline", Config: base},
		{Label: "Educated", Config: educated},
	}
	fr, err := RunFigure(fig, fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fr.SeriesByLabel("Baseline")
	e, _ := fr.SeriesByLabel("Educated")
	r := e.FinalMean / b.FinalMean
	if r < 0.18 || r > 0.32 {
		t.Errorf("0.10 acceptance level = %.1f vs baseline %.1f (%.0f%%), want ~25%%",
			e.FinalMean, b.FinalMean, 100*r)
	}
}

func virusByName(t *testing.T, name string) virus.Config {
	t.Helper()
	for _, v := range virus.Scenarios() {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("unknown virus %q", name)
	return virus.Config{}
}

// TestPaperClaimsBaselinePlateaus verifies the Section 5.1 statement: all
// four baselines plateau at ~320 infected (800 susceptible x 0.40 eventual
// acceptance).
func TestPaperClaimsBaselinePlateaus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(Figure1(FullScale), fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fr.Series {
		if s.FinalMean < 280 || s.FinalMean > 360 {
			t.Errorf("%s plateau = %.1f, want ~320", s.Label, s.FinalMean)
		}
	}
}

// TestPaperClaimsScaling verifies the Section 5.3 statement: a 2,000-phone
// population doubles the plateau without changing the picture.
func TestPaperClaimsScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(ScalingStudy(FullScale), core.Options{Replications: 3, GridPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	small, ok := fr.SeriesByLabel("1000 phones")
	if !ok {
		t.Fatal("1000-phone series missing")
	}
	large, ok := fr.SeriesByLabel("2000 phones")
	if !ok {
		t.Fatal("2000-phone series missing")
	}
	ratio := large.FinalMean / small.FinalMean
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("2000-phone plateau ratio = %.2f, want ~2.0 (%.1f vs %.1f)",
			ratio, large.FinalMean, small.FinalMean)
	}
}

// TestPaperClaimsCombined verifies the Section 6 extension: monitoring plus
// scan contains Virus 3 more than either alone.
func TestPaperClaimsCombined(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	fr, err := RunFigure(CombinedStudy(FullScale), fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	base, ok := fr.SeriesByLabel("Baseline")
	if !ok {
		t.Fatal("baseline missing")
	}
	both, ok := fr.SeriesByLabel("Monitor + Scan")
	if !ok {
		t.Fatal("combined series missing")
	}
	scanOnly, ok := fr.SeriesByLabel("Scan only (6h)")
	if !ok {
		t.Fatal("scan-only series missing")
	}
	if both.FinalMean >= base.FinalMean {
		t.Errorf("combined (%.1f) does not beat baseline (%.1f)", both.FinalMean, base.FinalMean)
	}
	if both.FinalMean >= scanOnly.FinalMean {
		t.Errorf("combined (%.1f) does not beat scan alone (%.1f): monitoring should buy the scan time",
			both.FinalMean, scanOnly.FinalMean)
	}
}

func assertChecks(t *testing.T, checks []Check, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s", c)
		} else {
			t.Logf("%s", c)
		}
	}
}
