package experiment

import (
	"testing"

	"repro/internal/core"
)

func TestNegativeStudyDefinitions(t *testing.T) {
	t.Parallel()

	studies := NegativeStudies(FullScale)
	if len(studies) != 5 {
		t.Fatalf("got %d negative studies, want 5", len(studies))
	}
	for _, f := range studies {
		if len(f.Series) < 2 {
			t.Errorf("%s has %d series", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if err := s.Config.Validate(); err != nil {
				t.Errorf("%s / %s: %v", f.ID, s.Label, err)
			}
		}
	}
}

func TestNegativeChecksNeedSeries(t *testing.T) {
	t.Parallel()

	empty := &FigureResult{Figure: Figure{ID: "x"}}
	if _, err := CheckScanVsVirus3(empty); err == nil {
		t.Error("scan-vs-v3 without series accepted")
	}
	if _, err := CheckMonitorVsSlowViruses(empty); err == nil {
		t.Error("monitor-vs-slow without series accepted")
	}
	if _, err := CheckBlacklistVsVirus2(empty); err == nil {
		t.Error("blacklist-vs-v2 without series accepted")
	}
	if _, err := CheckBlacklistVsVirus1(empty); err == nil {
		t.Error("blacklist-vs-v1 without series accepted")
	}
	if _, err := CheckBlacklistEquivalence(empty); err == nil {
		t.Error("blacklist-equivalence without series accepted")
	}
}

// TestPaperClaimsNegativeResults verifies the paper's ineffectiveness
// statements at full scale.
func TestPaperClaimsNegativeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	opts := core.Options{Replications: 4, GridPoints: 60}
	type study struct {
		fig   Figure
		check func(*FigureResult) ([]Check, error)
	}
	for _, s := range []study{
		{ScanVsVirus3Study(FullScale), CheckScanVsVirus3},
		{MonitorVsSlowVirusesStudy(FullScale), CheckMonitorVsSlowViruses},
		{BlacklistVsVirus2Study(FullScale), CheckBlacklistVsVirus2},
		{BlacklistVsVirus1Study(FullScale), CheckBlacklistVsVirus1},
		{BlacklistEquivalenceStudy(FullScale), CheckBlacklistEquivalence},
	} {
		fr, err := RunFigure(s.fig, opts)
		if err != nil {
			t.Fatal(err)
		}
		checks, err := s.check(fr)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range checks {
			if !c.Pass {
				t.Errorf("%s", c)
			} else {
				t.Logf("%s", c)
			}
		}
	}
}
