package experiment

import (
	"fmt"
	"time"

	"repro/internal/mms"
	"repro/internal/response"
	"repro/internal/virus"
)

// The paper's evaluation contains negative results — mechanisms that fail
// against particular viruses — that matter as much as the positive ones for
// the "optimal response strategy" conclusion of Section 5.3. These studies
// reproduce each of them.

// ScanVsVirus3Study reproduces "the gateway virus scan is completely
// ineffectual against rapid viruses like Virus 3 because the virus has
// already completely penetrated the entire susceptible population before
// the new virus signature is added".
func ScanVsVirus3Study(s Scale) Figure {
	fig := Figure{
		ID:     "neg-scan-v3",
		Title:  "Negative result: Gateway Scan vs fast Virus 3",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	fig.Series = append(fig.Series, Series{Label: "Baseline", Config: s.paperConfig(virus.Virus3())})
	for _, delay := range []time.Duration{6 * time.Hour, 12 * time.Hour} {
		cfg := s.paperConfig(virus.Virus3())
		cfg.Responses = []mms.ResponseFactory{response.NewScan(delay)}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("%d-Hour Delay", int(delay.Hours())),
			Config: cfg,
		})
	}
	return fig
}

// MonitorVsSlowVirusesStudy reproduces "the monitoring response mechanism
// is ineffectual against Viruses 1, 2, and 4 because the self-imposed
// constraints of those viruses limit the total number of messages sent from
// each phone per unit time".
func MonitorVsSlowVirusesStudy(s Scale) Figure {
	fig := Figure{
		ID:     "neg-monitor-slow",
		Title:  "Negative result: Monitoring vs self-throttled Viruses 1, 2, 4",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	for _, v := range []virus.Config{virus.Virus1(), virus.Virus2(), virus.Virus4()} {
		fig.Series = append(fig.Series, Series{Label: v.Name, Config: s.paperConfig(v)})
		cfg := s.paperConfig(v)
		cfg.Responses = []mms.ResponseFactory{response.NewMonitor(30 * time.Minute)}
		fig.Series = append(fig.Series, Series{Label: v.Name + " Monitored", Config: cfg})
	}
	return fig
}

// BlacklistVsVirus2Study reproduces "blacklisting is completely ineffective
// for Virus 2 at any threshold level because Virus 2 sends each infected
// message to many recipients, so the number of infected messages sent from
// a phone does not accurately capture the amount of virus propagation
// activity".
func BlacklistVsVirus2Study(s Scale) Figure {
	fig := Figure{
		ID:     "neg-blacklist-v2",
		Title:  "Negative result: Blacklisting vs multi-recipient Virus 2",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	fig.Series = append(fig.Series, Series{Label: "Baseline", Config: s.paperConfig(virus.Virus2())})
	for _, threshold := range []int{10, 40} {
		cfg := s.paperConfig(virus.Virus2())
		cfg.Responses = []mms.ResponseFactory{response.NewBlacklist(threshold)}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("%d Messages", threshold),
			Config: cfg,
		})
	}
	return fig
}

// BlacklistVsVirus1Study reproduces "blacklisting at a threshold level of
// 10 infected messages is somewhat effective for Viruses 1 and 4: the
// infection penetration is restricted to approximately 60% of the baseline
// infection penetration. However, blacklisting at higher thresholds is
// ineffective for these viruses."
func BlacklistVsVirus1Study(s Scale) Figure {
	fig := Figure{
		ID:     "neg-blacklist-v1",
		Title:  "Blacklisting vs single-recipient Virus 1 (threshold 10 vs 40)",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	fig.Series = append(fig.Series, Series{Label: "Baseline", Config: s.paperConfig(virus.Virus1())})
	for _, threshold := range []int{10, 40} {
		cfg := s.paperConfig(virus.Virus1())
		cfg.Responses = []mms.ResponseFactory{response.NewBlacklist(threshold)}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("%d Messages", threshold),
			Config: cfg,
		})
	}
	return fig
}

// BlacklistEquivalenceStudy reproduces the Section 5.2 equivalence:
// "blacklisting with a threshold level of 30 infected messages implemented
// against a virus with random propagation is equivalent, in terms of
// effectiveness, to blacklisting with a threshold level of 10 against a
// virus with contact list propagation" — because only one third of random
// dials are valid.
func BlacklistEquivalenceStudy(s Scale) Figure {
	fig := Figure{
		ID:     "blacklist-equivalence",
		Title:  "Blacklist equivalence: threshold 30 vs random == threshold 10 vs contacts",
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	// Virus 3 variant restricted to Virus 1's pacing so only the targeting
	// differs, plus the true Virus 1, both over the same horizon.
	contactVirus := virus.Virus3()
	contactVirus.Name = "Contact-list variant"
	contactVirus.Targeting = virus.TargetContacts
	contactVirus.ContactOrder = virus.OrderCycle
	contactVirus.ValidNumberFraction = 0

	randomCfg := s.paperConfig(virus.Virus3())
	randomCfg.Responses = []mms.ResponseFactory{response.NewBlacklist(30)}
	contactCfg := s.paperConfig(contactVirus)
	contactCfg.Horizon = randomCfg.Horizon
	contactCfg.Responses = []mms.ResponseFactory{response.NewBlacklist(10)}

	fig.Series = append(fig.Series,
		Series{Label: "Random @ threshold 30", Config: randomCfg},
		Series{Label: "Contacts @ threshold 10", Config: contactCfg},
	)
	return fig
}

// NegativeStudies returns every negative-result and equivalence study.
func NegativeStudies(s Scale) []Figure {
	return []Figure{
		ScanVsVirus3Study(s),
		MonitorVsSlowVirusesStudy(s),
		BlacklistVsVirus2Study(s),
		BlacklistVsVirus1Study(s),
		BlacklistEquivalenceStudy(s),
	}
}

// CheckScanVsVirus3 asserts the scan barely dents Virus 3.
func CheckScanVsVirus3(fr *FigureResult) ([]Check, error) {
	base, ok := fr.SeriesByLabel("Baseline")
	if !ok {
		return nil, fmt.Errorf("%w: Baseline", ErrSeriesMissing)
	}
	d6, ok := fr.SeriesByLabel("6-Hour Delay")
	if !ok {
		return nil, fmt.Errorf("%w: 6-Hour Delay", ErrSeriesMissing)
	}
	r := ratio(d6.FinalMean, base.FinalMean)
	return []Check{{
		ID:        "N1",
		Statement: "Gateway scan is ineffectual against Virus 3 (penetration completes before the signature lands)",
		Measured:  fmt.Sprintf("final %.1f with 6h scan vs baseline %.1f (%.0f%%)", d6.FinalMean, base.FinalMean, 100*r),
		Pass:      r > 0.60,
	}}, nil
}

// CheckMonitorVsSlowViruses asserts monitoring leaves Viruses 1, 2, 4
// essentially untouched.
func CheckMonitorVsSlowViruses(fr *FigureResult) ([]Check, error) {
	var checks []Check
	for _, name := range []string{"Virus 1", "Virus 2", "Virus 4"} {
		base, ok := fr.SeriesByLabel(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrSeriesMissing, name)
		}
		mon, ok := fr.SeriesByLabel(name + " Monitored")
		if !ok {
			return nil, fmt.Errorf("%w: %s Monitored", ErrSeriesMissing, name)
		}
		r := ratio(mon.FinalMean, base.FinalMean)
		checks = append(checks, Check{
			ID:        "N2-" + name[len(name)-1:],
			Statement: fmt.Sprintf("Monitoring is ineffectual against %s (volume within normal traffic)", name),
			Measured:  fmt.Sprintf("final %.1f monitored vs %.1f baseline (%.0f%%)", mon.FinalMean, base.FinalMean, 100*r),
			Pass:      r > 0.70,
		})
	}
	return checks, nil
}

// CheckBlacklistVsVirus2 asserts blacklisting fails against Virus 2 at any
// threshold.
func CheckBlacklistVsVirus2(fr *FigureResult) ([]Check, error) {
	base, ok := fr.SeriesByLabel("Baseline")
	if !ok {
		return nil, fmt.Errorf("%w: Baseline", ErrSeriesMissing)
	}
	t10, ok := fr.SeriesByLabel("10 Messages")
	if !ok {
		return nil, fmt.Errorf("%w: 10 Messages", ErrSeriesMissing)
	}
	r := ratio(t10.FinalMean, base.FinalMean)
	return []Check{{
		ID:        "N3",
		Statement: "Blacklisting is ineffective against Virus 2 (message counts miss multi-recipient spread)",
		Measured:  fmt.Sprintf("final %.1f at threshold 10 vs baseline %.1f (%.0f%%)", t10.FinalMean, base.FinalMean, 100*r),
		Pass:      r > 0.60,
	}}, nil
}

// CheckBlacklistVsVirus1 asserts the 60%-of-baseline containment at
// threshold 10 and ineffectiveness at 40 for Virus 1.
func CheckBlacklistVsVirus1(fr *FigureResult) ([]Check, error) {
	base, ok := fr.SeriesByLabel("Baseline")
	if !ok {
		return nil, fmt.Errorf("%w: Baseline", ErrSeriesMissing)
	}
	t10, ok := fr.SeriesByLabel("10 Messages")
	if !ok {
		return nil, fmt.Errorf("%w: 10 Messages", ErrSeriesMissing)
	}
	t40, ok := fr.SeriesByLabel("40 Messages")
	if !ok {
		return nil, fmt.Errorf("%w: 40 Messages", ErrSeriesMissing)
	}
	r10 := ratio(t10.FinalMean, base.FinalMean)
	r40 := ratio(t40.FinalMean, base.FinalMean)
	return []Check{
		{
			ID:        "N4a",
			Statement: "Blacklist@10 restricts Virus 1 to ~60% of baseline penetration",
			Measured:  fmt.Sprintf("final %.1f vs baseline %.1f (%.0f%%)", t10.FinalMean, base.FinalMean, 100*r10),
			Pass:      r10 > 0.35 && r10 < 0.85,
		},
		{
			ID:        "N4b",
			Statement: "Blacklist at higher thresholds is ineffective for Virus 1",
			Measured:  fmt.Sprintf("final %.1f at threshold 40 vs baseline %.1f (%.0f%%)", t40.FinalMean, base.FinalMean, 100*r40),
			Pass:      r40 > 0.80,
		},
	}, nil
}

// CheckBlacklistEquivalence asserts the threshold-30-random vs
// threshold-10-contacts equivalence.
func CheckBlacklistEquivalence(fr *FigureResult) ([]Check, error) {
	random, ok := fr.SeriesByLabel("Random @ threshold 30")
	if !ok {
		return nil, fmt.Errorf("%w: Random @ threshold 30", ErrSeriesMissing)
	}
	contacts, ok := fr.SeriesByLabel("Contacts @ threshold 10")
	if !ok {
		return nil, fmt.Errorf("%w: Contacts @ threshold 10", ErrSeriesMissing)
	}
	hi, lo := random.FinalMean, contacts.FinalMean
	if lo > hi {
		hi, lo = lo, hi
	}
	r := 1.0
	if hi > 0 {
		r = lo / hi
	}
	return []Check{{
		ID: "N5",
		Statement: "Blacklist@30 vs random targeting is equivalent to blacklist@10 vs contact targeting " +
			"(1/3 of random dials are valid)",
		Measured: fmt.Sprintf("final %.1f (random@30) vs %.1f (contacts@10), agreement %.0f%%",
			random.FinalMean, contacts.FinalMean, 100*r),
		Pass: r > 0.45,
	}}, nil
}
