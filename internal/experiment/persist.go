package experiment

import (
	"errors"
	"fmt"

	"repro/internal/store"
)

// PersistentSweep bundles the pieces of a disk-backed sweep: the open
// store, its journal, and a replication cache wired to both. It exists so
// the CLIs share one opening and closing discipline for -storedir and
// -resume instead of each re-deriving it.
type PersistentSweep struct {
	// Store is the open result store.
	Store *store.DiskStore
	// Journal is the open sweep journal inside the store directory.
	Journal *store.Journal
	// Cache is a persistent replication cache over Store and Journal,
	// ready to pass to RunSweep / RunFigureCached.
	Cache *ReplicationCache
	// Resumed is the number of completed units replayed from the journal:
	// zero for a fresh sweep, the prior run's progress under -resume.
	Resumed int
}

// OpenPersistentSweep opens (creating as needed) the result store at dir
// and its sweep journal. With resume true the journal's valid prefix is
// replayed and kept — the resumed run appends to it; with resume false
// the journal restarts empty. The store's objects are reused either way:
// content-addressed results are sound regardless of which run wrote them.
func OpenPersistentSweep(dir string, resume bool) (*PersistentSweep, error) {
	if dir == "" {
		return nil, errors.New("experiment: persistent sweep needs a store directory")
	}
	st, err := store.Open(dir, store.DiskOptions{})
	if err != nil {
		return nil, err
	}
	j, done, err := store.OpenJournal(nil, st.JournalPath(), resume)
	if err != nil {
		return nil, fmt.Errorf("experiment: open sweep journal: %w", err)
	}
	return &PersistentSweep{
		Store:   st,
		Journal: j,
		Cache:   NewPersistentCache(st, j),
		Resumed: len(done),
	}, nil
}

// Close closes the journal. Store entries need no closing — every write
// is already durable when Put returns.
func (ps *PersistentSweep) Close() error {
	return ps.Journal.Close()
}
