package experiment

import (
	"bytes"
	"context"
	"encoding/hex"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mms"
	"repro/internal/store"
	"repro/internal/workq"
)

func TestSelectStudies(t *testing.T) {
	t.Parallel()

	all, err := SelectStudies("all", testScale)
	if err != nil || len(all) != len(AllStudies(testScale)) {
		t.Fatalf("all: %d studies, err=%v", len(all), err)
	}
	one, err := SelectStudies("figure2", testScale)
	if err != nil || len(one) != 1 || one[0].ID != "figure2" {
		t.Fatalf("figure2: %+v err=%v", one, err)
	}
	if _, err := SelectStudies("figure99", testScale); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestSweepUnitsMatchesCacheCensus: the distributable unit list is exactly
// the cache's unique-unit census — same dedup of series shared across
// studies, same seeds — so distributing a sweep schedules precisely the
// work a serial cached sweep would simulate.
func TestSweepUnitsMatchesCacheCensus(t *testing.T) {
	t.Parallel()

	figs := []Figure{Figure1(testScale), Figure4(testScale)}
	unique, total := sweepUnitCensus(t, figs, testOpts)
	units, uncacheable := SweepUnits(figs, testOpts)
	if uncacheable != 0 {
		t.Errorf("uncacheable series = %d, want 0", uncacheable)
	}
	if len(units) != unique {
		t.Errorf("%d units enumerated, want %d (census of %d total)", len(units), unique, total)
	}
	seen := map[string]bool{}
	for i, u := range units {
		if u.Index != i {
			t.Errorf("unit %d has Index %d", i, u.Index)
		}
		if seen[u.ID()] {
			t.Errorf("unit %s enumerated twice", u.ID())
		}
		seen[u.ID()] = true
		if _, err := u.Key(); err != nil {
			t.Errorf("unit %d: %v", i, err)
		}
	}
	again, _ := SweepUnits(figs, testOpts)
	if !reflect.DeepEqual(units, again) {
		t.Error("SweepUnits is not deterministic")
	}
}

// TestSweepUnitsSkipsUncacheable: series whose configs cannot be
// fingerprinted are excluded from the unit list and counted, so the
// coordinator knows it must compute them locally.
func TestSweepUnitsSkipsUncacheable(t *testing.T) {
	t.Parallel()

	fig := Figure1(testScale)
	opaque := fig.Series[0]
	opaque.Label = "opaque"
	opaque.Config.PostRun = func(net *mms.Network) {} // opaque element
	fig.Series = append(fig.Series, opaque)
	units, uncacheable := SweepUnits([]Figure{fig}, testOpts)
	if uncacheable != 1 {
		t.Fatalf("uncacheable = %d, want 1", uncacheable)
	}
	wantUnits, _ := SweepUnits([]Figure{Figure1(testScale)}, testOpts)
	if len(units) != len(wantUnits) {
		t.Errorf("%d units with opaque series, want %d", len(units), len(wantUnits))
	}
}

// TestUnitRunnerPublishesIdenticalResult: executing a unit through the
// worker path stores byte-for-byte the result a direct RunReplication
// produces, and a second execution is a pure store read (no second Put).
func TestUnitRunnerPublishesIdenticalResult(t *testing.T) {
	t.Parallel()

	figs := []Figure{Figure6(testScale)}
	units, _ := SweepUnits(figs, testOpts)
	if len(units) == 0 {
		t.Fatal("no units")
	}
	u := units[0]

	ds, err := store.Open(t.TempDir(), store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := UnitRunner(ds, nil, figs)
	ctx := context.Background()
	if err := run(ctx, u); err != nil {
		t.Fatalf("unit run: %v", err)
	}
	key, err := u.Key()
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := ds.Get(ctx, key)
	if err != nil || !ok {
		t.Fatalf("stored result: ok=%v err=%v", ok, err)
	}
	cfg := figs[0].Series[u.Series].Config
	want, repErr := core.RunReplication(ctx, cfg, u.Rep, u.Seed)
	if repErr != nil {
		t.Fatal(repErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("worker-published result differs from direct computation")
	}

	if err := run(ctx, u); err != nil {
		t.Fatalf("idempotent rerun: %v", err)
	}
	if st := ds.Stats(); st.Puts != 1 {
		t.Errorf("puts = %d after rerun, want 1 (second run must be a store read)", st.Puts)
	}
}

// TestUnitRunnerVersionSkew: a unit whose fingerprint is not derivable from
// this binary's study matrix fails loudly instead of publishing a result
// for a config it cannot verify.
func TestUnitRunnerVersionSkew(t *testing.T) {
	t.Parallel()

	figs := []Figure{Figure6(testScale)}
	units, _ := SweepUnits(figs, testOpts)
	u := units[0]
	u.FP = strings.Repeat("ab", 32) // a fingerprint no config hashes to

	ds, err := store.Open(t.TempDir(), store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = UnitRunner(ds, nil, figs)(context.Background(), u)
	if err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("skewed unit: err = %v, want a version-skew error", err)
	}
}

// TestDistributedSweepAssemblesIdenticalCSV is the in-process end-to-end
// check: coordinator writes a manifest, an in-process worker drains it into
// the store, and assembly over the persistent cache emits CSV bytes
// identical to a plain serial sweep. The subprocess chaos test in
// cmd/mvfigures layers crashes on top of this same invariant.
func TestDistributedSweepAssemblesIdenticalCSV(t *testing.T) {
	t.Parallel()

	figs, err := SelectStudies("figure2", testScale)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	serial, err := RunSweep(ctx, figs, testOpts, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := serial.Figures[0].WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	storeDir := t.TempDir()
	spec := workq.Spec{Figure: "figure2", Reps: testOpts.Replications, BaseSeed: 1, Scale: testScale.Factor, Grid: testOpts.GridPoints}
	units, uncacheable := SweepUnits(figs, testOpts)
	if uncacheable != 0 || len(units) == 0 {
		t.Fatalf("units=%d uncacheable=%d", len(units), uncacheable)
	}
	q, err := workq.OpenQueue(QueueDir(storeDir), workq.QueueOptions{WorkerID: "coord"})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.WriteManifest(spec, units); err != nil {
		t.Fatal(err)
	}
	st, err := RunSweepWorker(ctx, WorkerConfig{StoreDir: storeDir, ID: "w1"})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	if st.Completed != uint64(len(units)) {
		t.Errorf("worker completed %d of %d units", st.Completed, len(units))
	}
	if prog := q.Census(units); prog.Acked != len(units) || prog.Open != 0 || prog.Dead != 0 {
		t.Fatalf("census after drain = %+v", prog)
	}

	ps, err := OpenPersistentSweep(storeDir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ps.Close() }()
	assembled, err := RunSweep(ctx, figs, testOpts, SweepOptions{Jobs: 4, Cache: ps.Cache})
	if err != nil {
		t.Fatal(err)
	}
	if cs := assembled.Cache; cs.Misses != 0 {
		t.Errorf("assembly recomputed %d units; every unit should be a store hit", cs.Misses)
	}
	var got bytes.Buffer
	if err := assembled.Figures[0].WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("distributed assembly CSV differs from serial sweep")
	}

	// Unit IDs and store keys agree by construction; spot-check the store
	// actually holds every unit under its manifest identity.
	for _, u := range units {
		key, _ := u.Key()
		if hexSum := u.FP; hexSum != hex.EncodeToString(key.Sum[:]) {
			t.Fatalf("unit %d fingerprint mismatch", u.Index)
		}
		if _, ok, _ := ds(t, storeDir).Get(ctx, key); !ok {
			t.Errorf("unit %s missing from store after drain", u.ID())
		}
	}
}

// ds opens a read handle on an existing store directory.
func ds(t *testing.T, dir string) *store.DiskStore {
	t.Helper()
	s, err := store.Open(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}
