package experiment

import (
	"testing"

	"repro/internal/core"
)

func TestReturnsValidation(t *testing.T) {
	t.Parallel()

	sweep := ScanReturnsSweep(testScale)
	if _, err := EvaluateReturns(Sweep{Name: "x", Baseline: sweep.Baseline}, 0.05, testOpts); err == nil {
		t.Error("sweep without levels accepted")
	}
	if _, err := EvaluateReturns(sweep, 0, testOpts); err == nil {
		t.Error("zero knee fraction accepted")
	}
	if _, err := EvaluateReturns(sweep, 1, testOpts); err == nil {
		t.Error("knee fraction 1 accepted")
	}
}

func TestReturnsSweepDefinitions(t *testing.T) {
	t.Parallel()

	for _, sweep := range []Sweep{
		ScanReturnsSweep(FullScale),
		DetectorReturnsSweep(FullScale),
		MonitorReturnsSweep(FullScale),
		ImmunizerReturnsSweep(FullScale),
	} {
		if len(sweep.Points) < 3 {
			t.Errorf("%s has only %d levels", sweep.Name, len(sweep.Points))
		}
		if err := sweep.Baseline.Validate(); err != nil {
			t.Errorf("%s baseline: %v", sweep.Name, err)
		}
		prev := -1.0
		for _, p := range sweep.Points {
			if err := p.Config.Validate(); err != nil {
				t.Errorf("%s / %s: %v", sweep.Name, p.Label, err)
			}
			if p.Strength <= prev {
				t.Errorf("%s: strengths not increasing at %s", sweep.Name, p.Label)
			}
			prev = p.Strength
		}
	}
}

func TestReturnsKneeOnScaledScan(t *testing.T) {
	t.Parallel()

	res, err := EvaluateReturns(ScanReturnsSweep(testScale), 0.05, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("got %d points", len(res.Points))
	}
	if res.Baseline <= 0 {
		t.Fatal("baseline has no infections")
	}
	// Prevention must be (weakly) increasing with strength, modulo noise:
	// the strongest level must prevent at least as much as the weakest.
	first := res.Points[0].Prevented
	last := res.Points[len(res.Points)-1].Prevented
	if last < first {
		t.Errorf("prevention decreased with strength: %v -> %v", first, last)
	}
	// Knee accessor agrees with index.
	if pt, ok := res.Knee(); ok {
		if res.Points[res.KneeIndex] != pt {
			t.Error("Knee() disagrees with KneeIndex")
		}
	}
}

// TestPaperClaimsDiminishingReturns verifies at full scale that every
// mechanism sweep exhibits a knee — the Section 5.3 observation that
// stronger variants eventually stop paying.
func TestPaperClaimsDiminishingReturns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale claim check skipped in short mode")
	}
	t.Parallel()

	opts := core.Options{Replications: 3, GridPoints: 40}
	for _, sweep := range []Sweep{
		ScanReturnsSweep(FullScale),
		MonitorReturnsSweep(FullScale),
		ImmunizerReturnsSweep(FullScale),
	} {
		res, err := EvaluateReturns(sweep, 0.08, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := res.Knee(); !ok {
			t.Errorf("%s: no point of diminishing returns found in sweep", sweep.Name)
			for _, p := range res.Points {
				t.Logf("  %-16s final=%7.1f prevented=%7.1f marginal=%7.1f",
					p.Label, p.Final, p.Prevented, p.MarginalGain)
			}
		} else {
			knee, _ := res.Knee()
			t.Logf("%s: knee at %s (marginal gain %.1f of baseline %.1f)",
				sweep.Name, knee.Label, knee.MarginalGain, res.Baseline)
		}
	}
}
