package experiment

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/store"
	"repro/internal/workq"
)

// WorkerConfig configures one sweep worker process (cmd/mvworker, or
// mvfigures' supervised worker mode — both run exactly this code, so a
// two-terminal manual worker and a coordinator-spawned one behave
// identically).
type WorkerConfig struct {
	// StoreDir is the shared store directory; the queue lives under
	// StoreDir/workq.
	StoreDir string
	// ID names the worker in claims and acks; empty derives from the pid.
	ID string
	// TTL, Heartbeat, Poll, MaxAttempts, Backoff tune the queue protocol;
	// zero values take workq's defaults.
	TTL, Heartbeat, Poll, Backoff time.Duration
	MaxAttempts                   int
	// ManifestWait bounds how long the worker waits for a complete
	// manifest to appear before giving up (default 30s).
	ManifestWait time.Duration
	// Drain, when closed, finishes the unit in hand and exits cleanly —
	// the SIGTERM path.
	Drain <-chan struct{}
	// Log, when non-nil, receives one-line progress notes.
	Log io.Writer
}

// QueueDir returns the work-queue directory inside a store directory.
func QueueDir(storeDir string) string { return filepath.Join(storeDir, "workq") }

// RunSweepWorker is the pull-execute-publish loop: open the shared store,
// wait for the coordinator's manifest, rebuild the study matrix from its
// spec, then drain units through workq.RunWorker. It returns this worker's
// stats; err is nil on a clean drain (all units terminal) or graceful
// drain request.
func RunSweepWorker(ctx context.Context, wc WorkerConfig) (workq.WorkerStats, error) {
	var st workq.WorkerStats
	if wc.StoreDir == "" {
		return st, fmt.Errorf("experiment: sweep worker needs a store directory")
	}
	if wc.ManifestWait <= 0 {
		wc.ManifestWait = 30 * time.Second
	}
	ds, err := store.Open(wc.StoreDir, store.DiskOptions{})
	if err != nil {
		return st, err
	}
	// Append to the shared journal without truncating it: the journal is
	// the sweep's, not this worker's. Replayed keys are the coordinator's
	// business; workers ignore them.
	j, _, err := store.OpenJournal(nil, ds.JournalPath(), true)
	if err != nil {
		return st, fmt.Errorf("experiment: open sweep journal: %w", err)
	}
	defer func() { _ = j.Close() }()

	q, err := workq.OpenQueue(QueueDir(wc.StoreDir), workq.QueueOptions{
		TTL:      wc.TTL,
		WorkerID: wc.ID,
	})
	if err != nil {
		return st, err
	}
	waitCtx, cancel := context.WithTimeout(ctx, wc.ManifestWait)
	m, err := workq.WaitManifest(waitCtx, q, 0)
	cancel()
	if err != nil {
		return st, err
	}
	figs, err := SelectStudies(m.Spec.Figure, Scale{Factor: m.Spec.Scale})
	if err != nil {
		return st, fmt.Errorf("experiment: manifest spec: %w", err)
	}
	if wc.Log != nil {
		_, _ = fmt.Fprintf(wc.Log, "worker %s: manifest %s: %d units\n", q.WorkerID(), m.Spec.Figure, len(m.Units))
	}
	st, err = workq.RunWorker(ctx, q, m, UnitRunner(ds, j, figs), workq.WorkerOptions{
		Poll:        wc.Poll,
		Heartbeat:   wc.Heartbeat,
		MaxAttempts: wc.MaxAttempts,
		Backoff:     wc.Backoff,
		Drain:       wc.Drain,
	})
	if wc.Log != nil {
		_, _ = fmt.Fprintf(wc.Log, "worker %s: done: %d completed, %d retried, %d dead-lettered, %d claim conflicts\n",
			q.WorkerID(), st.Completed, st.Retried, st.DeadLettered, st.ClaimConflicts)
	}
	return st, err
}
