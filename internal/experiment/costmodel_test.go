package experiment

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mms"
	"repro/internal/response"
	"repro/internal/virus"
)

func TestCostFrontierValidation(t *testing.T) {
	t.Parallel()

	baseline := testScale.paperConfig(virus.Virus3())
	if _, err := CostFrontier(baseline, nil, testOpts); err == nil {
		t.Error("empty option list accepted")
	}
	bad := []CostedOption{{Label: "x", Cost: -1, Config: baseline}}
	if _, err := CostFrontier(baseline, bad, testOpts); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestCostFrontierMarksEfficientOptions(t *testing.T) {
	t.Parallel()

	baseline := testScale.paperConfig(virus.Virus3())
	withResponse := func(f mms.ResponseFactory) core.Config {
		cfg := testScale.paperConfig(virus.Virus3())
		cfg.Responses = []mms.ResponseFactory{f}
		return cfg
	}
	options := []CostedOption{
		// A cheap strong option and an expensive weak one: the weak one
		// must be dominated.
		{Label: "blacklist@10 (cheap)", Cost: 10,
			Config: withResponse(response.NewBlacklist(10))},
		{Label: "scan 6h (expensive, too slow for V3)", Cost: 100,
			Config: withResponse(response.NewScan(6 * time.Hour))},
		{Label: "monitor 30m (mid)", Cost: 50,
			Config: withResponse(response.NewMonitor(30 * time.Minute))},
	}
	points, err := CostFrontier(baseline, options, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	byLabel := make(map[string]FrontierPoint, len(points))
	for _, p := range points {
		byLabel[p.Label] = p
	}
	cheap := byLabel["blacklist@10 (cheap)"]
	expensive := byLabel["scan 6h (expensive, too slow for V3)"]
	if !cheap.Efficient {
		t.Error("cheapest strongest option not marked efficient")
	}
	if expensive.Efficient && expensive.Prevented <= cheap.Prevented {
		t.Errorf("dominated option marked efficient: %+v vs %+v", expensive, cheap)
	}
	if cheap.Prevented <= 0 {
		t.Errorf("blacklist prevented %v infections, want > 0", cheap.Prevented)
	}
}

func TestMarkEfficientTieBreak(t *testing.T) {
	t.Parallel()

	points := []FrontierPoint{
		{Label: "a", Cost: 10, Prevented: 100},
		{Label: "b", Cost: 10, Prevented: 50},  // same cost, worse: dominated
		{Label: "c", Cost: 20, Prevented: 100}, // costlier, no better: dominated
		{Label: "d", Cost: 30, Prevented: 150}, // costlier but better: efficient
	}
	markEfficient(points)
	want := map[string]bool{"a": true, "b": false, "c": false, "d": true}
	for _, p := range points {
		if p.Efficient != want[p.Label] {
			t.Errorf("%s efficient = %v, want %v", p.Label, p.Efficient, want[p.Label])
		}
	}
}
