package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/curve"
)

// syntheticSeries builds a SeriesResult whose mean curve rises linearly
// from 0 to final over 100 hours.
func syntheticSeries(t *testing.T, label string, final float64) SeriesResult {
	t.Helper()
	c := curve.New(0)
	for h := 1; h <= 100; h++ {
		if err := c.Append(time.Duration(h)*time.Hour, final*float64(h)/100); err != nil {
			t.Fatal(err)
		}
	}
	band, err := curve.Aggregate([]*curve.Curve{c}, 100*time.Hour, 100)
	if err != nil {
		t.Fatal(err)
	}
	return SeriesResult{Label: label, Band: band, FinalMean: final}
}

func syntheticFigure(t *testing.T, id string, series ...SeriesResult) *FigureResult {
	t.Helper()
	return &FigureResult{Figure: Figure{ID: id, Title: id}, Series: series}
}

func TestCheckScanClaimsLogic(t *testing.T) {
	t.Parallel()

	good := syntheticFigure(t, "figure2",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "6-Hour Delay", 16),
		syntheticSeries(t, "12-Hour Delay", 40),
		syntheticSeries(t, "24-Hour Delay", 80),
	)
	checks, err := CheckScanClaims(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("paper-shaped data failed %s: %s", c.ID, c.Measured)
		}
	}

	bad := syntheticFigure(t, "figure2",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "6-Hour Delay", 320), // scan useless
		syntheticSeries(t, "12-Hour Delay", 320),
		syntheticSeries(t, "24-Hour Delay", 320),
	)
	checks, err = CheckScanClaims(bad)
	if err != nil {
		t.Fatal(err)
	}
	anyFail := false
	for _, c := range checks {
		if !c.Pass {
			anyFail = true
		}
	}
	if !anyFail {
		t.Error("useless scan passed every claim")
	}
}

func TestCheckDetectorClaimsLogic(t *testing.T) {
	t.Parallel()

	// Baseline reaches 42% of 320 (134) at ~42h; a detector series that
	// never reaches it passes (contained), one that tracks baseline fails.
	slowDetector := syntheticSeries(t, "0.95 Accuracy", 100) // plateaus below the level
	fig := syntheticFigure(t, "figure3",
		syntheticSeries(t, "Baseline", 320),
		slowDetector,
	)
	checks, err := CheckDetectorClaims(fig)
	if err != nil {
		t.Fatal(err)
	}
	if !checks[0].Pass {
		t.Errorf("contained detector failed: %s", checks[0].Measured)
	}
	if !strings.Contains(checks[0].Measured, "never (contained)") {
		t.Errorf("contained case not labeled: %s", checks[0].Measured)
	}

	tracking := syntheticFigure(t, "figure3",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "0.95 Accuracy", 320), // identical growth
	)
	checks, err = CheckDetectorClaims(tracking)
	if err != nil {
		t.Fatal(err)
	}
	if checks[0].Pass {
		t.Error("detector identical to baseline passed the slowdown claim")
	}
}

func TestCheckEducationClaimsLogic(t *testing.T) {
	t.Parallel()

	series := make([]SeriesResult, 0, 8)
	for _, name := range []string{"Virus 1", "Virus 2", "Virus 3", "Virus 4"} {
		series = append(series, syntheticSeries(t, name, 320))
	}
	for _, name := range []string{"Virus 1", "Virus 2", "Virus 3", "Virus 4"} {
		series = append(series, syntheticSeries(t, name+" User Ed", 160))
	}
	checks, err := CheckEducationClaims(syntheticFigure(t, "figure4", series...))
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 4 {
		t.Fatalf("got %d education checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("perfect halving failed %s: %s", c.ID, c.Measured)
		}
	}
}

func TestCheckImmunizationClaimsLogic(t *testing.T) {
	t.Parallel()

	fig := syntheticFigure(t, "figure5",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "Hours 24-25", 40),
		syntheticSeries(t, "Hours 24-48", 64), // +60%
		syntheticSeries(t, "Hours 24-30", 45),
		syntheticSeries(t, "Hours 48-49", 140),
		syntheticSeries(t, "Hours 48-72", 180),
		syntheticSeries(t, "Hours 48-54", 150),
	)
	checks, err := CheckImmunizationClaims(fig)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("paper-shaped immunization failed %s: %s", c.ID, c.Measured)
		}
	}
}

func TestCheckMonitoringClaimsLogic(t *testing.T) {
	t.Parallel()

	fig := syntheticFigure(t, "figure6",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "15-Minute Wait", 120), // never reaches 47% of 320
		syntheticSeries(t, "60-Minute Wait", 10),
	)
	checks, err := CheckMonitoringClaims(fig)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("contained monitoring failed %s: %s", c.ID, c.Measured)
		}
	}
}

func TestCheckBlacklistClaimsLogic(t *testing.T) {
	t.Parallel()

	fig := syntheticFigure(t, "figure7",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "10 Messages", 5),
		syntheticSeries(t, "40 Messages", 230),
	)
	checks, err := CheckBlacklistClaims(fig)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("paper-shaped blacklisting failed %s: %s", c.ID, c.Measured)
		}
	}
}

func TestNegativeChecksLogic(t *testing.T) {
	t.Parallel()

	scan := syntheticFigure(t, "neg-scan-v3",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "6-Hour Delay", 310),
		syntheticSeries(t, "12-Hour Delay", 318),
	)
	checks, err := CheckScanVsVirus3(scan)
	if err != nil {
		t.Fatal(err)
	}
	if !checks[0].Pass {
		t.Errorf("ineffectual scan failed N1: %s", checks[0].Measured)
	}

	monitor := syntheticFigure(t, "neg-monitor-slow",
		syntheticSeries(t, "Virus 1", 320), syntheticSeries(t, "Virus 1 Monitored", 318),
		syntheticSeries(t, "Virus 2", 320), syntheticSeries(t, "Virus 2 Monitored", 315),
		syntheticSeries(t, "Virus 4", 320), syntheticSeries(t, "Virus 4 Monitored", 319),
	)
	checks, err = CheckMonitorVsSlowViruses(monitor)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("ineffectual monitoring failed %s: %s", c.ID, c.Measured)
		}
	}

	bl2 := syntheticFigure(t, "neg-blacklist-v2",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "10 Messages", 318),
	)
	checks, err = CheckBlacklistVsVirus2(bl2)
	if err != nil {
		t.Fatal(err)
	}
	if !checks[0].Pass {
		t.Errorf("ineffective blacklist failed N3: %s", checks[0].Measured)
	}

	bl1 := syntheticFigure(t, "neg-blacklist-v1",
		syntheticSeries(t, "Baseline", 320),
		syntheticSeries(t, "10 Messages", 190), // ~60%
		syntheticSeries(t, "40 Messages", 315),
	)
	checks, err = CheckBlacklistVsVirus1(bl1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("60%%-containment shape failed %s: %s", c.ID, c.Measured)
		}
	}

	eq := syntheticFigure(t, "blacklist-equivalence",
		syntheticSeries(t, "Random @ threshold 30", 180),
		syntheticSeries(t, "Contacts @ threshold 10", 150),
	)
	checks, err = CheckBlacklistEquivalence(eq)
	if err != nil {
		t.Fatal(err)
	}
	if !checks[0].Pass {
		t.Errorf("near-equal pair failed N5: %s", checks[0].Measured)
	}
	// Zero-vs-zero degenerate agreement defaults to pass.
	zero := syntheticFigure(t, "blacklist-equivalence",
		syntheticSeries(t, "Random @ threshold 30", 0),
		syntheticSeries(t, "Contacts @ threshold 10", 0),
	)
	checks, err = CheckBlacklistEquivalence(zero)
	if err != nil {
		t.Fatal(err)
	}
	if !checks[0].Pass {
		t.Error("degenerate zero pair failed N5")
	}
}

func TestCheckPlateauInvarianceLogic(t *testing.T) {
	t.Parallel()

	fig := syntheticFigure(t, "sens-readdelay",
		syntheticSeries(t, "a", 320),
		syntheticSeries(t, "b", 250), // 22% off
	)
	checks := CheckPlateauInvariance(fig, 320, 0.12)
	if len(checks) != 2 {
		t.Fatalf("got %d checks", len(checks))
	}
	if !checks[0].Pass || checks[1].Pass {
		t.Errorf("invariance verdicts wrong: %v %v", checks[0].Pass, checks[1].Pass)
	}
	// Zero expectation: deviation defaults to zero and passes.
	zero := CheckPlateauInvariance(fig, 0, 0.12)
	if !zero[0].Pass {
		t.Error("zero-expected plateau failed")
	}
}
