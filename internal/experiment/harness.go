package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/curve"
)

// timeNow is the harness's wall-clock source for Elapsed measurements.
// It is a package variable so tests can inject a deterministic clock
// (clock.Fixed / clock.Stepped); simulated time never flows through it.
var timeNow clock.Clock = clock.System

// SeriesResult is one executed series of a figure.
type SeriesResult struct {
	// Label echoes the series label.
	Label string
	// Band is the cross-replication infection curve.
	Band *curve.Band
	// FinalMean is the mean final infection count.
	FinalMean float64
	// RunSet holds the full per-replication detail.
	RunSet *core.RunSet
}

// FigureResult is an executed figure.
type FigureResult struct {
	// Figure echoes the definition.
	Figure Figure
	// Series holds results in definition order.
	Series []SeriesResult
	// Elapsed is the wall-clock cost of the run.
	Elapsed time.Duration
}

// SeriesByLabel returns the named series result.
func (fr *FigureResult) SeriesByLabel(label string) (*SeriesResult, bool) {
	for i := range fr.Series {
		if fr.Series[i].Label == label {
			return &fr.Series[i], true
		}
	}
	return nil, false
}

// RunFigure executes every series of the figure with the given options.
func RunFigure(fig Figure, opts core.Options) (*FigureResult, error) {
	return RunFigureContext(context.Background(), fig, opts)
}

// RunFigureContext is RunFigure under a context: a cancellation or timeout
// aborts in-flight replications. Series inherit core.RunContext's salvage
// semantics, so a series whose surviving replications meet
// opts.MinReplications still contributes its aggregated band.
func RunFigureContext(ctx context.Context, fig Figure, opts core.Options) (*FigureResult, error) {
	if len(fig.Series) == 0 {
		return nil, fmt.Errorf("experiment: figure %s has no series", fig.ID)
	}
	start := timeNow()
	out := &FigureResult{Figure: fig, Series: make([]SeriesResult, 0, len(fig.Series))}
	for _, s := range fig.Series {
		rs, err := core.RunContext(ctx, s.Config, opts)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s / %s: %w", fig.ID, s.Label, err)
		}
		out.Series = append(out.Series, SeriesResult{
			Label:     s.Label,
			Band:      rs.Band,
			FinalMean: rs.FinalMean(),
			RunSet:    rs,
		})
	}
	out.Elapsed = timeNow().Sub(start)
	return out, nil
}

// ErrSeriesMissing is returned by claim evaluations when a needed series is
// absent from a figure result.
var ErrSeriesMissing = errors.New("experiment: series missing from figure result")
