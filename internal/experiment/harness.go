package experiment

import (
	"context"
	"errors"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/curve"
)

// timeNow is the harness's wall-clock source for Elapsed measurements.
// It is a package variable so tests can inject a deterministic clock
// (clock.Fixed / clock.Stepped); simulated time never flows through it.
var timeNow clock.Clock = clock.System

// SeriesResult is one executed series of a figure.
type SeriesResult struct {
	// Label echoes the series label.
	Label string
	// Band is the cross-replication infection curve.
	Band *curve.Band
	// FinalMean is the mean final infection count.
	FinalMean float64
	// RunSet holds the full per-replication detail.
	RunSet *core.RunSet
}

// FigureResult is an executed figure.
type FigureResult struct {
	// Figure echoes the definition.
	Figure Figure
	// Series holds results in definition order.
	Series []SeriesResult
	// Elapsed is the wall-clock cost of the run.
	Elapsed time.Duration
}

// SeriesByLabel returns the named series result.
func (fr *FigureResult) SeriesByLabel(label string) (*SeriesResult, bool) {
	for i := range fr.Series {
		if fr.Series[i].Label == label {
			return &fr.Series[i], true
		}
	}
	return nil, false
}

// RunFigure executes every series of the figure with the given options.
func RunFigure(fig Figure, opts core.Options) (*FigureResult, error) {
	return RunFigureContext(context.Background(), fig, opts)
}

// RunFigureContext is RunFigure under a context: a cancellation or timeout
// aborts in-flight replications. Every series runs on one shared worker
// pool (opts.Parallelism wide) via the sweep scheduler, and series inherit
// core.RunContext's salvage semantics, so a series whose surviving
// replications meet opts.MinReplications still contributes its aggregated
// band. A failed series no longer discards the completed ones: per-series
// failures are collected with errors.Join and the partial FigureResult is
// returned alongside the error, mirroring core.RunSet salvage.
func RunFigureContext(ctx context.Context, fig Figure, opts core.Options) (*FigureResult, error) {
	return RunFigureCached(ctx, fig, opts, nil)
}

// RunFigureCached is RunFigureContext with a caller-supplied replication
// cache — the hook the CLIs use to attach a persistent result store (and
// its sweep journal) to a single-figure run. A nil cache runs uncached.
func RunFigureCached(ctx context.Context, fig Figure, opts core.Options, cache *ReplicationCache) (*FigureResult, error) {
	sr, err := RunSweep(ctx, []Figure{fig}, opts, SweepOptions{Jobs: opts.Parallelism, Cache: cache})
	if err != nil {
		if sr != nil {
			return sr.Figures[0], err
		}
		return nil, err
	}
	return sr.Figures[0], nil
}

// ErrSeriesMissing is returned by claim evaluations when a needed series is
// absent from a figure result.
var ErrSeriesMissing = errors.New("experiment: series missing from figure result")
