package experiment

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Section 5.3 notes the results "would also be valuable in conjunction with
// implementation cost data for each response mechanism", while declining to
// invent provider-specific costs. This file supplies the machinery: given
// user-provided cost figures for a set of response options, it runs each
// option and computes the cost-effectiveness frontier (the options not
// dominated by a cheaper-and-at-least-as-effective alternative).

// CostedOption is one deployable response configuration with its
// provider-specific cost (any consistent unit).
type CostedOption struct {
	// Label names the option.
	Label string
	// Cost is the option's implementation cost (user-supplied).
	Cost float64
	// Config is the full scenario with the option attached.
	Config core.Config
}

// FrontierPoint is one evaluated option.
type FrontierPoint struct {
	Label     string
	Cost      float64
	Final     float64
	Prevented float64
	// Efficient marks options on the cost-effectiveness frontier: no
	// other option prevents at least as many infections for less.
	Efficient bool
}

// CostFrontier evaluates the options against the baseline and marks the
// efficient ones. Options must be non-empty with non-negative costs.
func CostFrontier(baseline core.Config, options []CostedOption, opts core.Options) ([]FrontierPoint, error) {
	if len(options) == 0 {
		return nil, errors.New("experiment: cost frontier needs at least one option")
	}
	for _, o := range options {
		if o.Cost < 0 {
			return nil, fmt.Errorf("experiment: option %q has negative cost", o.Label)
		}
	}
	baseRun, err := core.Run(baseline, opts)
	if err != nil {
		return nil, fmt.Errorf("experiment: cost-frontier baseline: %w", err)
	}
	base := baseRun.FinalMean()

	points := make([]FrontierPoint, 0, len(options))
	for _, o := range options {
		rs, err := core.Run(o.Config, opts)
		if err != nil {
			return nil, fmt.Errorf("experiment: cost-frontier option %q: %w", o.Label, err)
		}
		final := rs.FinalMean()
		points = append(points, FrontierPoint{
			Label:     o.Label,
			Cost:      o.Cost,
			Final:     final,
			Prevented: base - final,
		})
	}
	markEfficient(points)
	return points, nil
}

// markEfficient flags the non-dominated points: sorted by cost, a point is
// efficient iff it prevents strictly more than every cheaper point.
func markEfficient(points []FrontierPoint) {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := points[order[a]], points[order[b]]
		switch {
		case pa.Cost < pb.Cost:
			return true
		case pa.Cost > pb.Cost:
			return false
		}
		return pa.Prevented > pb.Prevented
	})
	best := -1.0
	for _, idx := range order {
		if points[idx].Prevented > best {
			points[idx].Efficient = true
			best = points[idx].Prevented
		}
	}
}
