package experiment

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/virus"
)

// The paper does not publish its user-timing distributions or the exact
// NGCE topology, so DESIGN.md documents calibrated substitutes. The
// sensitivity studies here vary each substituted parameter and confirm the
// paper's qualitative findings are insensitive to it — the justification
// for the substitution rule.

// SensitivityReadDelay sweeps the mean user read delay around the
// calibrated 30 minutes for the given virus.
func SensitivityReadDelay(s Scale, v virus.Config) Figure {
	fig := Figure{
		ID:     "sens-readdelay",
		Title:  fmt.Sprintf("Sensitivity: mean read delay (%s)", v.Name),
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	for _, mean := range []time.Duration{10 * time.Minute, 30 * time.Minute, 2 * time.Hour} {
		cfg := s.paperConfig(v)
		cfg.Network.ReadDelay = rng.Exponential{MeanD: mean}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("read mean %v", mean),
			Config: cfg,
		})
	}
	return fig
}

// SensitivityDeliveryDelay sweeps the gateway delivery latency.
func SensitivityDeliveryDelay(s Scale, v virus.Config) Figure {
	fig := Figure{
		ID:     "sens-delivery",
		Title:  fmt.Sprintf("Sensitivity: delivery latency (%s)", v.Name),
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	for _, mean := range []time.Duration{5 * time.Second, 30 * time.Second, 5 * time.Minute} {
		cfg := s.paperConfig(v)
		cfg.Network.DeliveryDelay = rng.Exponential{MeanD: mean}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("delivery mean %v", mean),
			Config: cfg,
		})
	}
	return fig
}

// SensitivityTopology compares the default clustered power-law contact
// lists with a configuration-model power law, Erdős–Rényi, and
// Watts–Strogatz wiring at the same mean degree.
func SensitivityTopology(s Scale, v virus.Config) Figure {
	fig := Figure{
		ID:     "sens-topology",
		Title:  fmt.Sprintf("Sensitivity: contact-list topology (%s)", v.Name),
		XLabel: "Hours",
		YLabel: "Infection Count",
	}

	local := s.paperConfig(v)
	fig.Series = append(fig.Series, Series{Label: "power-law local (default)", Config: local})

	configModel := s.paperConfig(v)
	configModel.Graph.Locality = false
	fig.Series = append(fig.Series, Series{Label: "power-law configuration model", Config: configModel})

	er := s.paperConfig(v)
	meanDeg := er.Graph.MeanDegree
	pop := er.Population
	er.GraphBuilder = func(src *rng.Source) (*graph.Graph, error) {
		return graph.ErdosRenyi(pop, meanDeg/float64(pop-1), src)
	}
	fig.Series = append(fig.Series, Series{Label: "Erdos-Renyi", Config: er})

	ws := s.paperConfig(v)
	wsPop := ws.Population
	k := int(ws.Graph.MeanDegree)
	if k%2 == 1 {
		k++
	}
	ws.GraphBuilder = func(src *rng.Source) (*graph.Graph, error) {
		return graph.WattsStrogatz(wsPop, k, 0.1, src)
	}
	fig.Series = append(fig.Series, Series{Label: "Watts-Strogatz", Config: ws})

	return fig
}

// SensitivityDetectThreshold sweeps the gateway detectability threshold
// that starts every response timer.
func SensitivityDetectThreshold(s Scale, v virus.Config) Figure {
	fig := Figure{
		ID:     "sens-detect",
		Title:  fmt.Sprintf("Sensitivity: gateway detectability threshold (%s)", v.Name),
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	for _, threshold := range []int{1, 10, 50} {
		cfg := s.paperConfig(v)
		cfg.Network.GatewayDetectThreshold = threshold
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("detect after %d messages", threshold),
			Config: cfg,
		})
	}
	return fig
}

// SensitivityCongestion challenges the paper's assumption that "the phone
// network infrastructure can support the extra volume of MMS messages":
// each recipient copy is lost with the given probability.
func SensitivityCongestion(s Scale, v virus.Config) Figure {
	fig := Figure{
		ID:     "sens-congestion",
		Title:  fmt.Sprintf("Sensitivity: carrier congestion loss (%s)", v.Name),
		XLabel: "Hours",
		YLabel: "Infection Count",
	}
	for _, loss := range []float64{0, 0.1, 0.3} {
		cfg := s.paperConfig(v)
		cfg.Network.DeliveryLossProb = loss
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("loss %.0f%%", 100*loss),
			Config: cfg,
		})
	}
	return fig
}

// SensitivityStudies returns the full sensitivity suite for one virus.
func SensitivityStudies(s Scale, v virus.Config) []Figure {
	return []Figure{
		SensitivityReadDelay(s, v),
		SensitivityDeliveryDelay(s, v),
		SensitivityTopology(s, v),
		SensitivityDetectThreshold(s, v),
		SensitivityCongestion(s, v),
	}
}

// CheckPlateauInvariance asserts that every series of a sensitivity figure
// plateaus near the consent-model prediction (susceptible share x eventual
// acceptance): the paper's headline numbers do not depend on the
// substituted parameter. expected is the predicted plateau; tol is the
// allowed relative deviation.
func CheckPlateauInvariance(fr *FigureResult, expected, tol float64) []Check {
	checks := make([]Check, 0, len(fr.Series))
	for _, s := range fr.Series {
		dev := 0.0
		if expected > 0 {
			dev = s.FinalMean/expected - 1
		}
		if dev < 0 {
			dev = -dev
		}
		checks = append(checks, Check{
			ID:        "S-" + fr.Figure.ID,
			Statement: fmt.Sprintf("%s: plateau invariant under %q", fr.Figure.Title, s.Label),
			Measured:  fmt.Sprintf("final %.1f vs predicted %.1f (dev %.0f%%)", s.FinalMean, expected, 100*dev),
			Pass:      dev <= tol,
		})
	}
	return checks
}
