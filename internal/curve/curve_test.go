package curve

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func mustAppend(t *testing.T, c *Curve, at time.Duration, v float64) {
	t.Helper()
	if err := c.Append(at, v); err != nil {
		t.Fatal(err)
	}
}

func TestAtStepSemantics(t *testing.T) {
	t.Parallel()

	c := New(0)
	mustAppend(t, c, time.Hour, 1)
	mustAppend(t, c, 3*time.Hour, 5)

	tests := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0},
		{time.Hour - time.Nanosecond, 0},
		{time.Hour, 1}, // right-continuous: jumps at the step time
		{2 * time.Hour, 1},
		{3 * time.Hour, 5},
		{100 * time.Hour, 5},
	}
	for _, tt := range tests {
		if got := c.At(tt.at); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestAppendOutOfOrder(t *testing.T) {
	t.Parallel()

	c := New(0)
	mustAppend(t, c, 2*time.Hour, 1)
	err := c.Append(time.Hour, 2)
	if !errors.Is(err, ErrTimeOrder) {
		t.Errorf("out-of-order append returned %v, want ErrTimeOrder", err)
	}
}

func TestAppendSameInstantCollapses(t *testing.T) {
	t.Parallel()

	c := New(0)
	mustAppend(t, c, time.Hour, 1)
	mustAppend(t, c, time.Hour, 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (same-instant collapse)", c.Len())
	}
	if got := c.At(time.Hour); got != 2 {
		t.Errorf("At(1h) = %v, want 2 (last value wins)", got)
	}
}

func TestFinalAndMax(t *testing.T) {
	t.Parallel()

	c := New(3)
	if c.Final() != 3 || c.Max() != 3 {
		t.Error("empty curve Final/Max should be Initial")
	}
	mustAppend(t, c, time.Hour, 10)
	mustAppend(t, c, 2*time.Hour, 7)
	if c.Final() != 7 {
		t.Errorf("Final = %v, want 7", c.Final())
	}
	if c.Max() != 10 {
		t.Errorf("Max = %v, want 10", c.Max())
	}
}

func TestTimeToReach(t *testing.T) {
	t.Parallel()

	c := New(0)
	mustAppend(t, c, time.Hour, 5)
	mustAppend(t, c, 2*time.Hour, 12)

	if at, ok := c.TimeToReach(5); !ok || at != time.Hour {
		t.Errorf("TimeToReach(5) = %v, %v", at, ok)
	}
	if at, ok := c.TimeToReach(6); !ok || at != 2*time.Hour {
		t.Errorf("TimeToReach(6) = %v, %v", at, ok)
	}
	if _, ok := c.TimeToReach(13); ok {
		t.Error("TimeToReach above max returned ok")
	}
	if at, ok := c.TimeToReach(-1); !ok || at != 0 {
		t.Errorf("TimeToReach below Initial = %v, %v", at, ok)
	}
}

func TestAUC(t *testing.T) {
	t.Parallel()

	c := New(0)
	mustAppend(t, c, time.Hour, 2)
	// value 0 on [0,1h), 2 on [1h, ...): AUC over 3h = 0*1 + 2*2 = 4.
	if got := c.AUC(3 * time.Hour); math.Abs(got-4) > 1e-9 {
		t.Errorf("AUC(3h) = %v, want 4", got)
	}
	if got := c.AUC(0); got != 0 {
		t.Errorf("AUC(0) = %v, want 0", got)
	}
	if got := c.AUC(30 * time.Minute); math.Abs(got) > 1e-9 {
		t.Errorf("AUC(30m) = %v, want 0", got)
	}
}

func TestAUCIgnoresStepsBeyondEnd(t *testing.T) {
	t.Parallel()

	c := New(1)
	mustAppend(t, c, 10*time.Hour, 100)
	if got := c.AUC(2 * time.Hour); math.Abs(got-2) > 1e-9 {
		t.Errorf("AUC(2h) = %v, want 2", got)
	}
}

func TestSample(t *testing.T) {
	t.Parallel()

	c := New(0)
	mustAppend(t, c, time.Hour, 1)
	pts, err := c.Sample(4*time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("Sample returned %d points, want 5", len(pts))
	}
	if pts[0].V != 0 || pts[1].V != 1 || pts[4].V != 1 {
		t.Errorf("sampled values wrong: %+v", pts)
	}
	if pts[4].T != 4*time.Hour {
		t.Errorf("last grid point at %v, want 4h", pts[4].T)
	}
}

func TestSampleErrors(t *testing.T) {
	t.Parallel()

	c := New(0)
	if _, err := c.Sample(time.Hour, 0); err == nil {
		t.Error("zero grid size accepted")
	}
	if _, err := c.Sample(0, 4); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestAggregate(t *testing.T) {
	t.Parallel()

	a := New(0)
	mustAppend(t, a, time.Hour, 2)
	b := New(0)
	mustAppend(t, b, time.Hour, 4)

	band, err := Aggregate([]*Curve{a, b}, 2*time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	if band.Len() != 3 {
		t.Fatalf("band Len = %d, want 3", band.Len())
	}
	if band.Mean[0] != 0 {
		t.Errorf("mean at t=0 is %v, want 0", band.Mean[0])
	}
	if band.Mean[1] != 3 || band.Mean[2] != 3 {
		t.Errorf("mean after step = %v, want 3", band.Mean[1:])
	}
	if band.Min[1] != 2 || band.Max[1] != 4 {
		t.Errorf("min/max = %v/%v, want 2/4", band.Min[1], band.Max[1])
	}
	// Percentile envelope sits between the extrema and brackets the mean.
	if band.P10[1] < band.Min[1] || band.P90[1] > band.Max[1] {
		t.Errorf("P10/P90 = %v/%v outside min/max", band.P10[1], band.P90[1])
	}
	if band.P10[1] > band.Mean[1] || band.P90[1] < band.Mean[1] {
		t.Errorf("P10/P90 = %v/%v do not bracket mean %v", band.P10[1], band.P90[1], band.Mean[1])
	}
	if band.FinalMean() != 3 {
		t.Errorf("FinalMean = %v, want 3", band.FinalMean())
	}
}

func TestAggregateErrors(t *testing.T) {
	t.Parallel()

	if _, err := Aggregate(nil, time.Hour, 2); err == nil {
		t.Error("empty curve list accepted")
	}
	if _, err := Aggregate([]*Curve{New(0)}, time.Hour, 0); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := Aggregate([]*Curve{New(0)}, 0, 3); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestBandMeanCurveAndTimeToReach(t *testing.T) {
	t.Parallel()

	a := New(0)
	mustAppend(t, a, time.Hour, 10)
	band, err := Aggregate([]*Curve{a}, 2*time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	at, ok := band.TimeToReachMean(10)
	if !ok || at != time.Hour {
		t.Errorf("TimeToReachMean(10) = %v, %v", at, ok)
	}
	if _, ok := band.TimeToReachMean(11); ok {
		t.Error("TimeToReachMean above max returned ok")
	}
	mc := band.MeanCurve()
	if mc.Final() != 10 {
		t.Errorf("MeanCurve Final = %v, want 10", mc.Final())
	}
}

func TestMonotoneAndPlateau(t *testing.T) {
	t.Parallel()

	c := New(0)
	mustAppend(t, c, 1*time.Hour, 1)
	mustAppend(t, c, 2*time.Hour, 3)
	mustAppend(t, c, 5*time.Hour, 3)
	if !c.Monotone() {
		t.Error("non-decreasing curve reported non-monotone")
	}
	if got := c.PlateauTime(); got != 2*time.Hour {
		t.Errorf("PlateauTime = %v, want 2h", got)
	}

	d := New(5)
	mustAppend(t, d, time.Hour, 3)
	if d.Monotone() {
		t.Error("decreasing curve reported monotone")
	}
	if New(0).PlateauTime() != 0 {
		t.Error("empty curve PlateauTime not 0")
	}
}

func TestPointsReturnsCopy(t *testing.T) {
	t.Parallel()

	c := New(0)
	mustAppend(t, c, time.Hour, 1)
	pts := c.Points()
	pts[0].V = 99
	if c.At(time.Hour) != 1 {
		t.Error("mutating Points() result changed the curve")
	}
}

// Property: At on sorted random steps returns the value of the latest step
// not after the query time.
func TestQuickAtMatchesLinearScan(t *testing.T) {
	t.Parallel()

	f := func(rawTimes []uint16, q uint16) bool {
		times := make([]time.Duration, len(rawTimes))
		for i, v := range rawTimes {
			times[i] = time.Duration(v) * time.Second
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		c := New(-1)
		for i, at := range times {
			if err := c.Append(at, float64(i)); err != nil {
				return false
			}
		}
		query := time.Duration(q) * time.Second
		want := -1.0
		for i, at := range times {
			if at <= query {
				// Same-instant appends collapse, so find the last index at
				// this time.
				want = float64(i)
			}
		}
		// Account for collapse: linear scan above picks the last equal-time
		// index, which matches Append semantics.
		return c.At(query) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: AUC is additive across the horizon split point.
func TestQuickAUCAdditive(t *testing.T) {
	t.Parallel()

	f := func(rawTimes []uint8, split uint8) bool {
		times := make([]time.Duration, len(rawTimes))
		for i, v := range rawTimes {
			times[i] = time.Duration(v) * time.Minute
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		c := New(1)
		for i, at := range times {
			if err := c.Append(at, float64(i%7)); err != nil {
				return false
			}
		}
		end := 256 * time.Minute
		mid := time.Duration(split) * time.Minute
		whole := c.AUC(end)
		left := c.AUC(mid)
		// Right side: integrate via sampling identity whole-left.
		right := whole - left
		// Recompute right directly from the step points.
		direct := 0.0
		prevT := mid
		prevV := c.At(mid)
		for _, p := range c.Points() {
			if p.T <= mid {
				continue
			}
			if p.T >= end {
				break
			}
			direct += prevV * float64(p.T-prevT)
			prevT, prevV = p.T, p.V
		}
		direct += prevV * float64(end-prevT)
		direct /= float64(time.Hour)
		return math.Abs(right-direct) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
