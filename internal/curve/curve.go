// Package curve models right-continuous step functions of simulated time,
// the natural shape of an infection count: flat between events, jumping at
// each infection. It supports grid sampling, cross-replication aggregation,
// and the scalar measures used in the paper's analysis (final level,
// time-to-threshold, area under the curve).
package curve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/stats"
)

// Point is a (time, value) pair.
type Point struct {
	T time.Duration
	V float64
}

// Curve is a right-continuous step function assembled from observations
// appended in non-decreasing time order. Before the first observation the
// curve's value is Initial (zero by default).
type Curve struct {
	Initial float64
	pts     []Point
}

// New returns an empty curve with the given initial value.
func New(initial float64) *Curve {
	return &Curve{Initial: initial}
}

// ErrTimeOrder is returned when observations are appended out of order.
var ErrTimeOrder = errors.New("curve: observation time precedes previous observation")

// Append records that the curve takes value v from time t onward. Multiple
// observations at the same instant collapse to the last one. Times must be
// non-decreasing.
func (c *Curve) Append(t time.Duration, v float64) error {
	if n := len(c.pts); n > 0 {
		last := c.pts[n-1]
		if t < last.T {
			return fmt.Errorf("%w: %v < %v", ErrTimeOrder, t, last.T)
		}
		if t == last.T {
			c.pts[n-1].V = v
			return nil
		}
	}
	c.pts = append(c.pts, Point{T: t, V: v})
	return nil
}

// Len returns the number of stored steps.
func (c *Curve) Len() int { return len(c.pts) }

// Points returns a copy of the underlying steps.
func (c *Curve) Points() []Point {
	return append([]Point(nil), c.pts...)
}

// At evaluates the step function at time t.
func (c *Curve) At(t time.Duration) float64 {
	// Find the last point with T <= t.
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].T > t })
	if i == 0 {
		return c.Initial
	}
	return c.pts[i-1].V
}

// Final returns the value after the last step (Initial if empty).
func (c *Curve) Final() float64 {
	if len(c.pts) == 0 {
		return c.Initial
	}
	return c.pts[len(c.pts)-1].V
}

// Max returns the maximum value the curve attains, including Initial.
func (c *Curve) Max() float64 {
	m := c.Initial
	for _, p := range c.pts {
		m = math.Max(m, p.V)
	}
	return m
}

// TimeToReach returns the earliest time at which the curve reaches or
// exceeds level, and whether it ever does.
func (c *Curve) TimeToReach(level float64) (time.Duration, bool) {
	if c.Initial >= level {
		return 0, true
	}
	for _, p := range c.pts {
		if p.V >= level {
			return p.T, true
		}
	}
	return 0, false
}

// AUC returns the integral of the step function from 0 to end. Steps beyond
// end are ignored; if the curve's last step precedes end, the final value
// extends to end.
func (c *Curve) AUC(end time.Duration) float64 {
	if end <= 0 {
		return 0
	}
	total := 0.0
	prevT := time.Duration(0)
	prevV := c.Initial
	for _, p := range c.pts {
		if p.T >= end {
			break
		}
		total += prevV * float64(p.T-prevT)
		prevT, prevV = p.T, p.V
	}
	total += prevV * float64(end-prevT)
	return total / float64(time.Hour) // hours as the canonical AUC unit
}

// Sample evaluates the curve on a uniform grid of n+1 points spanning
// [0, end] (inclusive of both endpoints). n must be positive.
func (c *Curve) Sample(end time.Duration, n int) ([]Point, error) {
	if n <= 0 {
		return nil, errors.New("curve: sample grid size must be positive")
	}
	if end <= 0 {
		return nil, errors.New("curve: sample horizon must be positive")
	}
	out := make([]Point, 0, n+1)
	for i := 0; i <= n; i++ {
		t := time.Duration(int64(end) * int64(i) / int64(n))
		out = append(out, Point{T: t, V: c.At(t)})
	}
	return out, nil
}

// Band is an aggregated curve across replications: for each grid time it
// carries the mean, a 95% confidence half-width, the 10th/90th percentile
// envelope, and the extrema.
type Band struct {
	Times []time.Duration
	Mean  []float64
	CI95  []float64
	P10   []float64
	P90   []float64
	Min   []float64
	Max   []float64
}

// Len returns the number of grid points in the band.
func (b *Band) Len() int { return len(b.Times) }

// FinalMean returns the mean value at the last grid point, or 0 when empty.
func (b *Band) FinalMean() float64 {
	if len(b.Mean) == 0 {
		return 0
	}
	return b.Mean[len(b.Mean)-1]
}

// MeanCurve reconstructs the mean as a Curve for reuse of scalar measures.
func (b *Band) MeanCurve() *Curve {
	c := New(0)
	if len(b.Times) > 0 {
		c.Initial = b.Mean[0]
	}
	for i, t := range b.Times {
		// Band grids are strictly increasing, so Append cannot fail.
		_ = c.Append(t, b.Mean[i])
	}
	return c
}

// TimeToReachMean returns the earliest grid time at which the band's mean
// reaches level.
func (b *Band) TimeToReachMean(level float64) (time.Duration, bool) {
	for i, m := range b.Mean {
		if m >= level {
			return b.Times[i], true
		}
	}
	return 0, false
}

// Aggregate samples every curve on a shared [0, end] grid of n+1 points and
// summarizes across curves per grid point. All curves contribute at every
// grid time (their step value at that time).
func Aggregate(curves []*Curve, end time.Duration, n int) (*Band, error) {
	if len(curves) == 0 {
		return nil, errors.New("curve: aggregate of zero curves")
	}
	if n <= 0 || end <= 0 {
		return nil, errors.New("curve: aggregate needs positive grid and horizon")
	}
	b := &Band{
		Times: make([]time.Duration, 0, n+1),
		Mean:  make([]float64, 0, n+1),
		CI95:  make([]float64, 0, n+1),
		P10:   make([]float64, 0, n+1),
		P90:   make([]float64, 0, n+1),
		Min:   make([]float64, 0, n+1),
		Max:   make([]float64, 0, n+1),
	}
	vals := make([]float64, len(curves))
	for i := 0; i <= n; i++ {
		t := time.Duration(int64(end) * int64(i) / int64(n))
		for j, c := range curves {
			vals[j] = c.At(t)
		}
		s := stats.Summarize(vals)
		// Quantile only errors on empty input or bad fractions, both
		// excluded here.
		p10, _ := stats.Quantile(vals, 0.10)
		p90, _ := stats.Quantile(vals, 0.90)
		b.Times = append(b.Times, t)
		b.Mean = append(b.Mean, s.Mean)
		b.CI95 = append(b.CI95, s.CIHalf95)
		b.P10 = append(b.P10, p10)
		b.P90 = append(b.P90, p90)
		b.Min = append(b.Min, s.Min)
		b.Max = append(b.Max, s.Max)
	}
	return b, nil
}

// Monotone reports whether the curve never decreases (true for cumulative
// infection counts without recovery).
func (c *Curve) Monotone() bool {
	prev := c.Initial
	for _, p := range c.pts {
		if p.V < prev {
			return false
		}
		prev = p.V
	}
	return true
}

// PlateauTime returns the time of the last increase of a monotone curve,
// i.e. when it reached its final plateau. For an empty curve it returns 0.
func (c *Curve) PlateauTime() time.Duration {
	for i := len(c.pts) - 1; i >= 0; i-- {
		prev := c.Initial
		if i > 0 {
			prev = c.pts[i-1].V
		}
		//mvlint:allow floateq — step values are stored verbatim and compared unmodified, so equality is exact
		if c.pts[i].V != prev {
			return c.pts[i].T
		}
	}
	return 0
}
