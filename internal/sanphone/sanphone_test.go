package sanphone

import (
	"testing"
	"time"

	"repro/internal/mms"
	"repro/internal/rng"
	"repro/internal/san"
)

func TestDefaultConfigValid(t *testing.T) {
	t.Parallel()

	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tiny population", func(c *Config) { c.Population = 1 }},
		{"zero vulnerable", func(c *Config) { c.VulnerableFraction = 0 }},
		{"fraction above one", func(c *Config) { c.VulnerableFraction = 2 }},
		{"zero send rate", func(c *Config) { c.SendRatePerHour = 0 }},
		{"zero read rate", func(c *Config) { c.ReadRatePerHour = 0 }},
		{"bad AF", func(c *Config) { c.AcceptanceFactor = 0 }},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := Build(DefaultConfig(), nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestBuildStructure(t *testing.T) {
	t.Parallel()

	cfg := DefaultConfig()
	cfg.Population = 10
	m, err := Build(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// 1 shared pool + 4 places per phone.
	if got, want := len(m.SAN.Places()), 1+4*10; got != want {
		t.Errorf("places = %d, want %d", got, want)
	}
	// 2 activities per phone.
	if got, want := len(m.SAN.Activities()), 2*10; got != want {
		t.Errorf("activities = %d, want %d", got, want)
	}
	if m.InfectedPool == nil {
		t.Fatal("infected pool missing")
	}
}

func TestSeedCountsInPool(t *testing.T) {
	t.Parallel()

	cfg := DefaultConfig()
	cfg.Population = 8
	root := rng.New(3)
	m, err := Build(cfg, root.Stream(1))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := san.NewExecution(m.SAN, root.Stream(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.Marking().Get(m.InfectedPool); got != 1 {
		t.Errorf("initial pool = %d, want 1 (the seed)", got)
	}
}

func TestRunSpreadsAndConserves(t *testing.T) {
	t.Parallel()

	cfg := DefaultConfig()
	cfg.Population = 25
	infected, err := Run(cfg, 5, 300*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if infected < 2 {
		t.Errorf("SAN model did not spread: %d infected", infected)
	}
	vulnerable := int(cfg.VulnerableFraction*float64(cfg.Population) + 0.5)
	if infected > vulnerable {
		t.Errorf("infected %d exceeds vulnerable pool %d", infected, vulnerable)
	}
}

// TestPlateauMatchesConsentModel is the formalism-level cross-check: the
// SAN expression of the phone model must plateau at vulnerable x eventual
// acceptance, like the production simulator and the analytic model.
func TestPlateauMatchesConsentModel(t *testing.T) {
	t.Parallel()

	cfg := DefaultConfig()
	cfg.Population = 30
	const reps = 8
	total := 0
	for seed := uint64(1); seed <= reps; seed++ {
		infected, err := Run(cfg, seed, 2000*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		total += infected
	}
	mean := float64(total) / reps
	vulnerable := cfg.VulnerableFraction * float64(cfg.Population)
	// The seed is infected with certainty; the rest accept with the
	// eventual-acceptance probability.
	want := 1 + (vulnerable-1)*mms.EventualAcceptance(cfg.AcceptanceFactor)
	if mean < want*0.7 || mean > want*1.3 {
		t.Errorf("SAN plateau mean = %.1f, consent model predicts %.1f", mean, want)
	}
}

func TestRunDeterministic(t *testing.T) {
	t.Parallel()

	cfg := DefaultConfig()
	cfg.Population = 15
	a, err := Run(cfg, 11, 100*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 11, 100*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %d vs %d", a, b)
	}
}

// TestReplicateReusesBuiltModel pins the property the stateless-activity
// refactor bought this package: one Build (the O(population²) case
// structure) can back many sequential replications, identical sources give
// identical trajectories, and the model left behind by one replication
// does not leak state into the next.
func TestReplicateReusesBuiltModel(t *testing.T) {
	t.Parallel()

	cfg := DefaultConfig()
	root := rng.New(11)
	model, err := Build(cfg, root.Stream(1))
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 12 * time.Hour
	finalA, eventsA, err := model.Replicate(rng.New(99), horizon)
	if err != nil {
		t.Fatal(err)
	}
	// A replication with a different source in between must not perturb
	// the repeat of the first.
	if _, _, err := model.Replicate(rng.New(7), horizon); err != nil {
		t.Fatal(err)
	}
	finalB, eventsB, err := model.Replicate(rng.New(99), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if finalA != finalB || eventsA != eventsB {
		t.Errorf("same source on a reused model: final %d/%d events %d/%d, want identical",
			finalA, finalB, eventsA, eventsB)
	}
	if eventsA == 0 {
		t.Error("replication executed no events; probe is vacuous")
	}
	if finalA < 1 {
		t.Errorf("final infected %d, want at least the seed phone", finalA)
	}
}

// TestReplicateMatchesRun pins Run's RNG stream layout: Run is Build with
// stream 1 plus Replicate with stream 2, so the convenience wrapper and
// the reuse path can never drift apart.
func TestReplicateMatchesRun(t *testing.T) {
	t.Parallel()

	cfg := DefaultConfig()
	const (
		seed    = 21
		horizon = 12 * time.Hour
	)
	viaRun, err := Run(cfg, seed, horizon)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(seed)
	model, err := Build(cfg, root.Stream(1))
	if err != nil {
		t.Fatal(err)
	}
	viaReplicate, _, err := model.Replicate(root.Stream(2), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if viaRun != viaReplicate {
		t.Errorf("Run = %d infected, Build+Replicate = %d, want identical", viaRun, viaReplicate)
	}
}
