// Package sanphone expresses the paper's phone submodel in the stochastic
// activity network formalism of the Möbius tool, demonstrating that the
// internal/san substrate can represent the original model the way the
// authors built it: a phone template replicated over the population with a
// shared infected-count place (the Möbius Rep node), per-phone inbox and
// state places, a timed send activity on infected phones, and a timed read
// activity whose marking-dependent case probabilities implement the AF/2^n
// consent model.
//
// The production simulator (internal/core) runs directly on the
// discrete-event kernel for speed and full mechanism support; this package
// is the formalism-level reference whose results are cross-checked against
// the consent model's analytic plateau in tests.
package sanphone

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mms"
	"repro/internal/rng"
	"repro/internal/san"
)

// Config sizes the SAN phone model. SAN execution is heavier than the
// direct simulator, so populations are laptop-scale.
type Config struct {
	// Population is the number of phone replicas.
	Population int
	// VulnerableFraction is the susceptible share.
	VulnerableFraction float64
	// SendRatePerHour is each infected phone's message rate (messages are
	// addressed to one uniformly random other phone).
	SendRatePerHour float64
	// ReadRatePerHour is the rate at which a pending inbox message is
	// read.
	ReadRatePerHour float64
	// AcceptanceFactor is the consent model's AF.
	AcceptanceFactor float64
}

// DefaultConfig returns a small population matching the paper's rates:
// roughly one message per 30 minutes and half-hour reads.
func DefaultConfig() Config {
	return Config{
		Population:         40,
		VulnerableFraction: 0.8,
		SendRatePerHour:    2,
		ReadRatePerHour:    2,
		AcceptanceFactor:   mms.PaperAcceptanceFactor,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Population < 2:
		return errors.New("sanphone: population must be at least 2")
	case c.VulnerableFraction <= 0 || c.VulnerableFraction > 1:
		return fmt.Errorf("sanphone: vulnerable fraction %v outside (0,1]", c.VulnerableFraction)
	case c.SendRatePerHour <= 0:
		return errors.New("sanphone: send rate must be positive")
	case c.ReadRatePerHour <= 0:
		return errors.New("sanphone: read rate must be positive")
	case c.AcceptanceFactor <= 0 || c.AcceptanceFactor > 2:
		return fmt.Errorf("sanphone: acceptance factor %v outside (0,2]", c.AcceptanceFactor)
	}
	return nil
}

// Model is the composed SAN plus handles needed to read results.
type Model struct {
	SAN *san.Model
	// InfectedPool is the shared place counting infected phones.
	InfectedPool *san.Place

	inboxes []*san.Place
}

// Build composes the population SAN. The vulnerability mask and the seed
// phone are chosen with src (the SAN execution gets its own source).
func Build(cfg Config, src *rng.Source) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("sanphone: nil rng source")
	}
	n := cfg.Population
	vulnerable := make([]bool, n)
	perm := src.Perm(n)
	k := int(cfg.VulnerableFraction*float64(n) + 0.5)
	for i := 0; i < k; i++ {
		vulnerable[perm[i]] = true
	}
	seed := perm[0] // a vulnerable phone

	model := &Model{inboxes: make([]*san.Place, n)}

	// First pass: create every phone's places so send activities can
	// address all inboxes through their cases.
	type phonePlaces struct {
		susceptible, infected, inbox, trials *san.Place
	}
	phones := make([]phonePlaces, n)

	tmpl := func(m *san.Model, shared map[string]*san.Place, idx int) error {
		susceptibleInit := 0
		infectedInit := 0
		if vulnerable[idx] {
			susceptibleInit = 1
		}
		if idx == seed {
			susceptibleInit = 0
			infectedInit = 1
		}
		var err error
		if phones[idx].susceptible, err = m.AddPlace(san.Namespace("phone", idx, "susceptible"), susceptibleInit); err != nil {
			return err
		}
		if phones[idx].infected, err = m.AddPlace(san.Namespace("phone", idx, "infected"), infectedInit); err != nil {
			return err
		}
		if phones[idx].inbox, err = m.AddPlace(san.Namespace("phone", idx, "inbox"), 0); err != nil {
			return err
		}
		if phones[idx].trials, err = m.AddPlace(san.Namespace("phone", idx, "trials"), 0); err != nil {
			return err
		}
		model.inboxes[idx] = phones[idx].inbox
		if idx == seed {
			if err := m.SetInitial(shared["infectedPool"], 1); err != nil {
				return err
			}
		}
		return nil
	}

	sanModel, err := san.Rep("mms-virus", n, []string{"infectedPool"}, tmpl)
	if err != nil {
		return nil, err
	}

	var pool *san.Place
	for _, candidate := range []string{"infectedPool"} {
		p, perr := findPlace(sanModel, candidate)
		if perr != nil {
			return nil, perr
		}
		pool = p
	}
	model.SAN = sanModel
	model.InfectedPool = pool

	// Second pass: activities. Each infected phone sends at the configured
	// rate; the message lands in a uniformly random other phone's inbox
	// (one case per target, equal weights — the SAN idiom for random
	// targeting). Each pending message is read at the read rate; the read
	// activity's marking-dependent cases implement accept/reject with
	// probability AF/2^(trials+1).
	for i := 0; i < n; i++ {
		i := i
		sendGate := &san.InputGate{
			Enabled: func(mk *san.Marking) bool { return mk.Get(phones[i].infected) >= 1 },
		}
		cases := make([]san.Case, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			cases = append(cases, san.Case{Weight: 1, Outputs: []*san.Place{phones[j].inbox}})
		}
		if _, err := sanModel.AddActivity(san.Namespace("phone", i, "send"),
			san.WithDelay(san.ExpDelay(func(mk *san.Marking) float64 {
				if mk.Get(phones[i].infected) < 1 {
					return 0
				}
				return cfg.SendRatePerHour
			})),
			san.WithInputGate(sendGate),
			san.WithCases(cases...),
		); err != nil {
			return nil, err
		}

		accept := san.Case{
			DynWeight: func(mk *san.Marking) float64 {
				return mms.AcceptanceProbability(cfg.AcceptanceFactor, mk.Get(phones[i].trials))
			},
			Gates: []*san.OutputGate{{
				Fire: func(mk *san.Marking) {
					if mk.Get(phones[i].susceptible) >= 1 {
						mk.Add(phones[i].susceptible, -1)
						mk.Add(phones[i].infected, 1)
						mk.Add(pool, 1)
					}
				},
			}},
		}
		reject := san.Case{
			DynWeight: func(mk *san.Marking) float64 {
				return 1 - mms.AcceptanceProbability(cfg.AcceptanceFactor, mk.Get(phones[i].trials))
			},
		}
		readGate := &san.InputGate{
			Enabled: func(mk *san.Marking) bool { return mk.Get(phones[i].inbox) >= 1 },
			Fire: func(mk *san.Marking) {
				mk.Add(phones[i].inbox, -1)
				mk.Add(phones[i].trials, 1)
			},
		}
		if _, err := sanModel.AddActivity(san.Namespace("phone", i, "read"),
			san.WithDelay(san.ExpDelay(func(mk *san.Marking) float64 {
				pending := mk.Get(phones[i].inbox)
				if pending < 1 {
					return 0
				}
				return cfg.ReadRatePerHour * float64(pending)
			})),
			san.WithInputGate(readGate),
			san.WithCases(accept, reject),
		); err != nil {
			return nil, err
		}
	}
	return model, nil
}

// Replicate executes one trajectory of the built model and returns the
// final infected count plus the number of kernel events executed. Because
// activities carry no runtime state, the same built Model can be replicated
// any number of times sequentially — replications share the vulnerability
// mask and seed phone chosen at Build time and differ only through src, so
// benchmark loops skip the O(population²) case construction entirely.
func (m *Model) Replicate(src *rng.Source, horizon time.Duration) (int, uint64, error) {
	exec, err := san.NewExecution(m.SAN, src)
	if err != nil {
		return 0, 0, err
	}
	if err := exec.Run(horizon); err != nil {
		return 0, 0, err
	}
	return exec.Marking().Get(m.InfectedPool), exec.Events(), nil
}

// findPlace locates a model place by name.
func findPlace(m *san.Model, name string) (*san.Place, error) {
	for _, p := range m.Places() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("sanphone: place %q not found", name)
}

// Run builds and executes the SAN model, returning the final infected
// count.
func Run(cfg Config, seed uint64, horizon time.Duration) (int, error) {
	root := rng.New(seed)
	model, err := Build(cfg, root.Stream(1))
	if err != nil {
		return 0, err
	}
	final, _, err := model.Replicate(root.Stream(2), horizon)
	return final, err
}
