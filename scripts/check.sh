#!/bin/sh
# Local quality gate: formatting, vet, mvlint, and the full test suite
# under the race detector. Each step is a Make target so CI can run them
# as separate, individually visible steps without drifting from this
# script. Run from the repository root (or let the cd handle it).
set -eu
cd "$(dirname "$0")/.."

make fmt-check
make vet
make lint
make race
