#!/bin/sh
# Local quality gate: formatting, vet, and the full test suite under the
# race detector. Run from the repository root (or let the cd handle it).
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l cmd examples internal bench_test.go)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go run ./cmd/mvlint ./...
go test -race ./...
