// Package repro_test benchmarks regenerate every figure of the paper's
// evaluation section plus the scaling study, the combined-response
// extension, the Bluetooth extension, and ablations of this reproduction's
// design choices (documented in DESIGN.md). Each benchmark iteration runs
// the full experiment at the paper's population with a small replication
// count and reports the headline measure (mean final infections) as a
// custom metric, so `go test -bench=. -benchmem` both times the simulator
// and re-derives the paper's numbers.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/mms"
	"repro/internal/proximity"
	"repro/internal/response"
	"repro/internal/virus"
)

// benchOpts keeps each iteration affordable while exercising the full
// paper-scale population.
func benchOpts() core.Options {
	return core.Options{Replications: 2, GridPoints: 50}
}

// runFigure executes the figure once per iteration and reports the final
// infection means of its first and last series.
func runFigure(b *testing.B, fig experiment.Figure) {
	b.Helper()
	var fr *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fr, err = experiment.RunFigure(fig, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if fr != nil {
		b.ReportMetric(fr.Series[0].FinalMean, "final-infected/first-series")
		b.ReportMetric(fr.Series[len(fr.Series)-1].FinalMean, "final-infected/last-series")
	}
}

func BenchmarkFigure1Baselines(b *testing.B) {
	runFigure(b, experiment.Figure1(experiment.FullScale))
}

func BenchmarkFigure2VirusScan(b *testing.B) {
	runFigure(b, experiment.Figure2(experiment.FullScale))
}

func BenchmarkFigure3Detection(b *testing.B) {
	runFigure(b, experiment.Figure3(experiment.FullScale))
}

func BenchmarkFigure4Education(b *testing.B) {
	runFigure(b, experiment.Figure4(experiment.FullScale))
}

func BenchmarkFigure5Immunization(b *testing.B) {
	runFigure(b, experiment.Figure5(experiment.FullScale))
}

func BenchmarkFigure6Monitoring(b *testing.B) {
	runFigure(b, experiment.Figure6(experiment.FullScale))
}

func BenchmarkFigure7Blacklisting(b *testing.B) {
	runFigure(b, experiment.Figure7(experiment.FullScale))
}

// BenchmarkScaling2000 reproduces the Section 5.3 remark: the same study at
// a 2,000-phone population.
func BenchmarkScaling2000(b *testing.B) {
	runFigure(b, experiment.ScalingStudy(experiment.FullScale))
}

// BenchmarkCombinedResponses reproduces the Section 6 future-work study:
// monitoring buying time for a gateway scan on Virus 3.
func BenchmarkCombinedResponses(b *testing.B) {
	runFigure(b, experiment.CombinedStudy(experiment.FullScale))
}

// BenchmarkNegativeScanVsVirus3 reproduces the paper's negative result:
// the scan cannot catch Virus 3.
func BenchmarkNegativeScanVsVirus3(b *testing.B) {
	runFigure(b, experiment.ScanVsVirus3Study(experiment.FullScale))
}

// BenchmarkNegativeMonitorVsSlow reproduces the paper's negative result:
// monitoring misses self-throttled viruses.
func BenchmarkNegativeMonitorVsSlow(b *testing.B) {
	runFigure(b, experiment.MonitorVsSlowVirusesStudy(experiment.FullScale))
}

// BenchmarkNegativeBlacklistVsVirus2 reproduces the paper's negative
// result: message counting misses multi-recipient spread.
func BenchmarkNegativeBlacklistVsVirus2(b *testing.B) {
	runFigure(b, experiment.BlacklistVsVirus2Study(experiment.FullScale))
}

// BenchmarkBlacklistEquivalence reproduces the Section 5.2 equivalence of
// threshold 30 against random dialing and threshold 10 against contacts.
func BenchmarkBlacklistEquivalence(b *testing.B) {
	runFigure(b, experiment.BlacklistEquivalenceStudy(experiment.FullScale))
}

// BenchmarkProximitySpread exercises the Bluetooth extension.
func BenchmarkProximitySpread(b *testing.B) {
	cfg := proximity.DefaultConfig()
	var final int
	for i := 0; i < b.N; i++ {
		res, err := proximity.Run(cfg, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalInfected
	}
	b.ReportMetric(float64(final), "final-infected")
}

// BenchmarkSingleReplication times one full-scale Virus 1 baseline
// replication — the simulator's core unit of work.
func BenchmarkSingleReplication(b *testing.B) {
	cfg := core.Default(virus.Virus1())
	for i := 0; i < b.N; i++ {
		if _, err := core.RunOnce(cfg, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks for DESIGN.md's modeling choices ---

// BenchmarkAblationDetectorIndependent runs Virus 2 against a detector with
// independent per-copy verdicts instead of the default correlated
// per-sender-day recognition. DESIGN.md argues independence cannot slow the
// multi-recipient flood; the reported metric shows it.
func BenchmarkAblationDetectorIndependent(b *testing.B) {
	cfg := core.Default(virus.Virus2())
	cfg.Responses = []mms.ResponseFactory{
		func() mms.Response {
			return &response.Detector{
				Accuracy:           0.95,
				AnalysisDelay:      response.DefaultAnalysisDelay,
				IndependentPerCopy: true,
			}
		},
	}
	var rs *core.RunSet
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = core.Run(cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if rs != nil {
		b.ReportMetric(rs.FinalMean(), "final-infected")
	}
}

// BenchmarkAblationConfigurationModelGraph runs the Virus 1 baseline on a
// configuration-model contact graph (clustering ~0.2) instead of the
// default locality wiring (clustering ~0.7), showing how topology drives
// the time scale of the curves.
func BenchmarkAblationConfigurationModelGraph(b *testing.B) {
	cfg := core.Default(virus.Virus1())
	cfg.Graph.Locality = false
	var rs *core.RunSet
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = core.Run(cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if rs != nil {
		if t, ok := rs.Band.TimeToReachMean(rs.FinalMean() * 0.9); ok {
			b.ReportMetric(t.Hours(), "hours-to-90pct")
		}
	}
}

// BenchmarkAblationDuplicateTrials runs Virus 2 with duplicate-trial
// suppression disabled: every delivered copy gets an independent consent
// decision, which lets the flood exhaust each user's acceptance within the
// first day.
func BenchmarkAblationDuplicateTrials(b *testing.B) {
	cfg := core.Default(virus.Virus2())
	cfg.Network.AllowDuplicateTrials = true
	var rs *core.RunSet
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = core.Run(cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if rs != nil {
		if t, ok := rs.Band.TimeToReachMean(rs.FinalMean() * 0.9); ok {
			b.ReportMetric(t.Hours(), "hours-to-90pct")
		}
	}
}

// BenchmarkAblationMonitorWindow compares the default 30-minute/2-message
// monitoring window against a 24-hour/35-message variant that lets Virus 3
// burst freely before flagging.
func BenchmarkAblationMonitorWindow(b *testing.B) {
	cfg := core.Default(virus.Virus3())
	cfg.Responses = []mms.ResponseFactory{
		response.NewMonitorFull(24*time.Hour, 35, 15*time.Minute),
	}
	var rs *core.RunSet
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = core.Run(cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if rs != nil {
		b.ReportMetric(rs.FinalMean(), "final-infected")
	}
}
