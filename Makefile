GO ?= go

.PHONY: build test bench check fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -w cmd examples internal bench_test.go

# The full local gate: formatting, vet, race-enabled tests.
check:
	sh scripts/check.sh
