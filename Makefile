GO ?= go

.PHONY: build test bench bench-baseline bench-check microbench check fmt fmt-check vet lint lint-audit race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Pinned performance suite (see DESIGN.md §9): emits BENCH_local.json.
bench:
	$(GO) run ./cmd/mvbench -label local -out . -count 3

# Regenerate the committed CI baseline after an intentional perf change.
bench-baseline:
	$(GO) run ./cmd/mvbench -label baseline -out . -count 5

# The CI regression gate: fresh run vs the committed baseline.
bench-check:
	$(GO) run ./cmd/mvbench -label ci -out . -count 5 -compare BENCH_baseline.json

# Ad-hoc go test benchmarks (figures, ablations, kernels).
microbench:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -w cmd examples internal bench_test.go

# Fails (listing the files) instead of rewriting, for CI.
fmt-check:
	@unformatted=$$(gofmt -l cmd examples internal bench_test.go); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Determinism & simulation-hygiene static analysis, including the
# interprocedural hot-path/publication/goroutine rules (DESIGN.md §8, §13).
lint:
	$(GO) run ./cmd/mvlint ./...

# Suppression hygiene: additionally flag //mvlint:allow comments whose
# finding has since been fixed, and typo'd rule names. Run nightly in CI.
lint-audit:
	$(GO) run ./cmd/mvlint -staleallow ./...

race:
	$(GO) test -race ./...

# The full local gate: formatting, vet, mvlint, race-enabled tests.
check:
	sh scripts/check.sh
