GO ?= go

.PHONY: build test bench check fmt lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -w cmd examples internal bench_test.go

# Determinism & simulation-hygiene static analysis (see DESIGN.md §8).
lint:
	$(GO) run ./cmd/mvlint ./...

# The full local gate: formatting, vet, mvlint, race-enabled tests.
check:
	sh scripts/check.sh
